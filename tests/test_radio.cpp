#include <gtest/gtest.h>

#include "geo/grid.hpp"
#include "geo/population.hpp"
#include "radio/conditions.hpp"
#include "radio/link_model.hpp"
#include "radio/profile.hpp"
#include "stats/summary.hpp"

namespace sixg::radio {
namespace {

CellConditions nominal() {
  return CellConditions{.load = 0.35, .quality = 0.85, .bler = 0.05,
                        .spike_rate = 0.01};
}

// ---------------------------------------------------------------- profiles

TEST(Profiles, GenerationsOrderedByLatency) {
  const RadioLinkModel nsa{AccessProfile::fiveg_nsa()};
  const RadioLinkModel sa{AccessProfile::fiveg_sa_urllc()};
  const RadioLinkModel sixg{AccessProfile::sixg()};
  const CellConditions c = nominal();
  EXPECT_GT(nsa.expected_rtt(c).ms(), sa.expected_rtt(c).ms());
  EXPECT_GT(sa.expected_rtt(c).ms(), sixg.expected_rtt(c).ms());
}

TEST(Profiles, SixGMeetsSubMillisecondTarget) {
  // She et al. [5]: 6G aims at 100 us-class radio latency; with a clean
  // cell our model's RTT stays below 1 ms.
  const RadioLinkModel sixg{AccessProfile::sixg()};
  const CellConditions clean{.load = 0.1, .quality = 0.95, .bler = 0.01,
                             .spike_rate = 0.0};
  EXPECT_LT(sixg.expected_rtt(clean).ms(), 1.0);
}

TEST(Profiles, NsaMatchesUrbanMagnitudes) {
  // Loaded urban NSA: tens of ms RTT — the regime the paper measured.
  const RadioLinkModel nsa{AccessProfile::fiveg_nsa()};
  const double rtt = nsa.expected_rtt(nominal()).ms();
  EXPECT_GT(rtt, 15.0);
  EXPECT_LT(rtt, 60.0);
}

// ---------------------------------------------------------------- sampling

TEST(LinkModel, SampleMeanMatchesExpectedRtt) {
  const RadioLinkModel nsa{AccessProfile::fiveg_nsa()};
  const CellConditions c = nominal();
  Rng rng{12};
  stats::Summary s;
  for (int i = 0; i < 60000; ++i) s.add(nsa.sample_rtt(c, rng).ms());
  EXPECT_NEAR(s.mean() / nsa.expected_rtt(c).ms(), 1.0, 0.05);
}

struct ConditionCase {
  CellConditions conditions;
};

class ExpectedVsSampled : public ::testing::TestWithParam<ConditionCase> {};

TEST_P(ExpectedVsSampled, AgreeWithinTolerance) {
  const RadioLinkModel model{AccessProfile::fiveg_nsa()};
  const CellConditions c = GetParam().conditions;
  Rng rng{13};
  stats::Summary s;
  for (int i = 0; i < 60000; ++i) s.add(model.sample_rtt(c, rng).ms());
  EXPECT_NEAR(s.mean() / model.expected_rtt(c).ms(), 1.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExpectedVsSampled,
    ::testing::Values(
        ConditionCase{{.load = 0.1, .quality = 0.95, .bler = 0.01,
                       .spike_rate = 0.005}},
        ConditionCase{{.load = 0.5, .quality = 0.7, .bler = 0.1,
                       .spike_rate = 0.02}},
        ConditionCase{{.load = 0.74, .quality = 0.45, .bler = 0.3,
                       .spike_rate = 0.02}},
        ConditionCase{{.load = 0.62, .quality = 0.55, .bler = 0.22,
                       .spike_rate = 0.12}}));

TEST(LinkModel, LatencyMonotoneInLoad) {
  const RadioLinkModel model{AccessProfile::fiveg_nsa()};
  CellConditions lo = nominal();
  lo.load = 0.1;
  CellConditions hi = nominal();
  hi.load = 0.7;
  EXPECT_LT(model.expected_rtt(lo).ms(), model.expected_rtt(hi).ms());
}

TEST(LinkModel, LatencyMonotoneInBler) {
  const RadioLinkModel model{AccessProfile::fiveg_nsa()};
  CellConditions lo = nominal();
  lo.bler = 0.01;
  CellConditions hi = nominal();
  hi.bler = 0.3;
  EXPECT_LT(model.expected_rtt(lo).ms(), model.expected_rtt(hi).ms());
}

TEST(LinkModel, WorseQualityCostsMoreAirTime) {
  const RadioLinkModel model{AccessProfile::fiveg_nsa()};
  CellConditions good = nominal();
  good.quality = 0.95;
  CellConditions bad = nominal();
  bad.quality = 0.45;
  EXPECT_LT(model.expected_rtt(good).ms(), model.expected_rtt(bad).ms());
}

TEST(LinkModel, UplinkCarriesSchedulingOverhead) {
  const RadioLinkModel model{AccessProfile::fiveg_nsa()};
  const CellConditions c{.load = 0.2, .quality = 0.9, .bler = 0.0,
                         .spike_rate = 0.0};
  Rng rng{14};
  stats::Summary ul;
  stats::Summary dl;
  for (int i = 0; i < 20000; ++i) {
    ul.add(model.sample_uplink(c, rng).ms());
    dl.add(model.sample_downlink(c, rng).ms());
  }
  EXPECT_GT(ul.mean(), dl.mean() + 3.0);  // SR wait + grant
}

TEST(LinkModel, FastHarqShortensSpikeRecovery) {
  // Same conditions, same spike rate: 6G's spikes must be far smaller.
  CellConditions spiky = nominal();
  spiky.spike_rate = 1.0;  // force a spike on every direction
  const RadioLinkModel nsa{AccessProfile::fiveg_nsa()};
  const RadioLinkModel sixg{AccessProfile::sixg()};
  Rng rng_a{15};
  Rng rng_b{15};
  stats::Summary nsa_s;
  stats::Summary sixg_s;
  for (int i = 0; i < 5000; ++i) {
    nsa_s.add(nsa.sample_rtt(spiky, rng_a).ms());
    sixg_s.add(sixg.sample_rtt(spiky, rng_b).ms());
  }
  EXPECT_GT(nsa_s.mean(), 10.0 * sixg_s.mean());
}

TEST(LinkModel, SamplesAreDeterministicPerSeed) {
  const RadioLinkModel model{AccessProfile::fiveg_nsa()};
  const CellConditions c = nominal();
  Rng a{77};
  Rng b{77};
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(model.sample_rtt(c, a).ns(), model.sample_rtt(c, b).ns());
}

// ------------------------------------------------------------- environment

class RemFixture : public ::testing::Test {
 protected:
  RemFixture()
      : grid_(geo::SectorGrid::klagenfurt_sector()),
        pop_(geo::PopulationRaster::klagenfurt(grid_)),
        rem_(RadioEnvironmentMap::klagenfurt(grid_, pop_)) {}
  geo::SectorGrid grid_;
  geo::PopulationRaster pop_;
  RadioEnvironmentMap rem_;
};

TEST_F(RemFixture, AnchorCellsPinned) {
  const auto c1 = rem_.at(*grid_.parse_label("C1"));
  const auto c3 = rem_.at(*grid_.parse_label("C3"));
  const auto b3 = rem_.at(*grid_.parse_label("B3"));
  const auto e5 = rem_.at(*grid_.parse_label("E5"));
  EXPECT_LT(c1.load, 0.3);       // best cell is lightly loaded
  EXPECT_GT(c3.load, 0.7);       // worst cell is congested
  EXPECT_LT(b3.spike_rate, 0.001);  // most stable: spike-free
  EXPECT_GT(e5.spike_rate, 0.1);    // most bursty
}

TEST_F(RemFixture, GeneratedCellsStayInsideAnchorExtremes) {
  const auto c3 = rem_.at(*grid_.parse_label("C3"));
  const auto e5 = rem_.at(*grid_.parse_label("E5"));
  for (const auto cell : grid_.all_cells()) {
    const auto label = grid_.label(cell);
    if (label == "C1" || label == "C3" || label == "B3" || label == "E5")
      continue;
    const auto& c = rem_.at(cell);
    EXPECT_LE(c.load, c3.load) << label;
    EXPECT_LE(c.spike_rate, e5.spike_rate) << label;
    EXPECT_GT(c.quality, 0.0) << label;
    EXPECT_LE(c.quality, 1.0) << label;
    EXPECT_GE(c.bler, 0.0) << label;
    EXPECT_LT(c.bler, 0.5) << label;
  }
}

TEST_F(RemFixture, WorstMeanCellIsC3) {
  const RadioLinkModel model{AccessProfile::fiveg_nsa()};
  const double c3 = model.expected_rtt(rem_.at(*grid_.parse_label("C3"))).ms();
  for (const auto cell : grid_.all_cells()) {
    EXPECT_LE(model.expected_rtt(rem_.at(cell)).ms(), c3 + 1e-9)
        << grid_.label(cell);
  }
}

TEST_F(RemFixture, SetOverridesCell) {
  RadioEnvironmentMap rem = rem_;
  const auto target = *grid_.parse_label("D4");
  CellConditions custom{.load = 0.11, .quality = 0.99, .bler = 0.001,
                        .spike_rate = 0.001};
  rem.set(target, custom);
  EXPECT_DOUBLE_EQ(rem.at(target).load, 0.11);
}

TEST_F(RemFixture, DeterministicConstruction) {
  const RadioEnvironmentMap again =
      RadioEnvironmentMap::klagenfurt(grid_, pop_);
  for (const auto cell : grid_.all_cells()) {
    EXPECT_DOUBLE_EQ(again.at(cell).load, rem_.at(cell).load);
    EXPECT_DOUBLE_EQ(again.at(cell).quality, rem_.at(cell).quality);
  }
}

}  // namespace
}  // namespace sixg::radio
