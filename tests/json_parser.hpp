/// @file json_parser.hpp — minimal JSON parser shared by the test suite.
/// Just enough RFC 8259 to round-trip the repo's JSON emitters (scenario
/// results, obs metrics/trace documents, stats to_json): objects, arrays,
/// strings with escapes, numbers, booleans, null. Deliberately strict —
/// bare non-finite tokens (NaN, Infinity) are malformed, which is exactly
/// what the emitters promise never to produce. Throws std::runtime_error
/// on malformed input.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace sixg::testutil {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] bool boolean() const { return std::get<bool>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing data");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error("expected different character");
    ++pos_;
  }
  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      throw std::runtime_error("bad literal");
    pos_ += word.size();
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return JsonValue{string()};
      case 'n':
        literal("null");
        return JsonValue{nullptr};
      case 't':
        literal("true");
        return JsonValue{true};
      case 'f':
        literal("false");
        return JsonValue{false};
      default:
        return JsonValue{number()};
    }
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*obj)[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
          const unsigned code = unsigned(
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16));
          pos_ += 4;
          if (code > 0x7f) throw std::runtime_error("non-ASCII \\u in tests");
          out.push_back(char(code));
          break;
        }
        default:
          throw std::runtime_error("bad escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    char* end = nullptr;
    const std::string token{text_.substr(start, pos_ - start)};
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') throw std::runtime_error("bad number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace sixg::testutil
