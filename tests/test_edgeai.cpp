#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/ar_game.hpp"
#include "core/registry.hpp"
#include "core/scenarios.hpp"
#include "edgeai/accelerator.hpp"
#include "edgeai/energy.hpp"
#include "edgeai/model.hpp"
#include "edgeai/offload.hpp"
#include "edgeai/serving.hpp"
#include "netsim/simulator.hpp"

namespace sixg::edgeai {
namespace {

using namespace sixg::literals;

// ---------------------------------------------------------------- model zoo

TEST(ModelZoo, ProfilesAndLookup) {
  const auto& zoo = ModelZoo::profiles();
  ASSERT_GE(zoo.size(), 4u);
  std::set<std::string> names;
  for (const auto& m : zoo) {
    EXPECT_TRUE(names.insert(m.name).second) << "duplicate " << m.name;
    EXPECT_GT(m.gflops, 0.0) << m.name;
    EXPECT_GT(m.input_size.bit_count(), 0) << m.name;
    EXPECT_GT(m.batch_marginal_cost, 0.0) << m.name;
    EXPECT_LT(m.batch_marginal_cost, 1.0) << m.name;
  }
  ASSERT_NE(ModelZoo::find("det-base"), nullptr);
  EXPECT_EQ(ModelZoo::find("det-base")->tier, AccuracyTier::kBase);
  EXPECT_EQ(ModelZoo::find("no-such-model"), nullptr);
  EXPECT_EQ(&ModelZoo::at("det-base"), ModelZoo::find("det-base"));
}

TEST(ModelZoo, BatchComputeIsSublinear) {
  const auto& m = ModelZoo::at("det-base");
  EXPECT_DOUBLE_EQ(m.batch_gflops(1), m.gflops);
  double prev_per_item = m.batch_gflops(1);
  for (std::uint32_t b = 2; b <= 32; b *= 2) {
    EXPECT_LT(m.batch_gflops(b), m.gflops * double(b)) << b;
    const double per_item = m.batch_gflops(b) / double(b);
    EXPECT_LT(per_item, prev_per_item) << b;  // amortisation is monotone
    prev_per_item = per_item;
  }
}

// -------------------------------------------------------------- accelerator

TEST(Accelerator, ServiceTimeRoofline) {
  const auto edge = AcceleratorProfile::edge_gpu();
  const auto device = AcceleratorProfile::device_npu();
  const auto& m = ModelZoo::at("det-base");

  Duration prev;
  double prev_per_item = 1e18;
  for (const std::uint32_t b : {1u, 2u, 4u, 8u, 16u}) {
    const Duration t = edge.service_time(m, b);
    EXPECT_GT(t, prev) << b;  // a bigger batch takes longer...
    const double per_item = t.ms() / double(b);
    EXPECT_LT(per_item, prev_per_item) << b;  // ...but less per request
    prev = t;
    prev_per_item = per_item;
  }
  EXPECT_LT(edge.service_time(m, 1), device.service_time(m, 1));
}

TEST(Accelerator, MemoryGatesThePlacement) {
  const auto& caption = ModelZoo::at("caption-large");
  EXPECT_FALSE(AcceleratorProfile::device_npu().fits(caption));
  EXPECT_TRUE(AcceleratorProfile::edge_gpu().fits(caption));
  EXPECT_TRUE(AcceleratorProfile::cloud_gpu().fits(caption));
  EXPECT_TRUE(AcceleratorProfile::device_npu().fits(ModelZoo::at("kws-lite")));
}

// --------------------------------------------------- dynamic batching server

struct ServerHarness {
  netsim::Simulator sim;
  AcceleratorServer server;
  std::vector<AcceleratorServer::Completion> completions;

  explicit ServerHarness(AcceleratorServer::BatchingConfig config,
                         const char* model = "det-base")
      : sim(1),
        server(sim, AcceleratorProfile::edge_gpu(), ModelZoo::at(model),
               config) {}

  void submit_at(Duration when, std::uint64_t id) {
    sim.schedule_at(TimePoint{} + when, [this, id] {
      (void)server.submit(id, [this](const AcceleratorServer::Completion& c) {
        completions.push_back(c);
      });
    });
  }
};

TEST(AcceleratorServer, BatchNeverExceedsMax) {
  ServerHarness h{{.max_batch = 8, .batch_window = 2.0_ms,
                   .queue_capacity = 256}};
  for (std::uint64_t i = 0; i < 30; ++i) h.submit_at(Duration{}, i);
  h.sim.run();

  ASSERT_EQ(h.completions.size(), 30u);
  for (const auto& c : h.completions) {
    EXPECT_GE(c.batch_size, 1u);
    EXPECT_LE(c.batch_size, 8u);
  }
  EXPECT_GE(h.server.batches_launched(), 4u);  // ceil(30/8)
  EXPECT_EQ(h.server.completed(), 30u);
  EXPECT_EQ(h.server.submitted(), 30u);
  EXPECT_EQ(h.server.dropped(), 0u);
  // Telemetry after the drain: idle server, empty queue, and a mean
  // batch consistent with the counters.
  EXPECT_FALSE(h.server.busy());
  EXPECT_EQ(h.server.queue_depth(), 0u);
  EXPECT_GT(h.server.mean_batch_size(), 1.0);
  EXPECT_LE(h.server.mean_batch_size(), 8.0);
  EXPECT_DOUBLE_EQ(h.server.mean_batch_size(),
                   30.0 / double(h.server.batches_launched()));
}

TEST(AcceleratorServer, FifoWithinAndAcrossBatches) {
  ServerHarness h{{.max_batch = 4, .batch_window = 1.0_ms,
                   .queue_capacity = 256}};
  for (std::uint64_t i = 0; i < 21; ++i)
    h.submit_at(Duration::micros(std::int64_t(i) * 137), i);
  h.sim.run();

  ASSERT_EQ(h.completions.size(), 21u);
  for (std::uint64_t i = 0; i < h.completions.size(); ++i) {
    EXPECT_EQ(h.completions[i].request_id, i);  // submission order preserved
  }
  for (const auto& c : h.completions) {
    EXPECT_GE(c.started, c.submitted);
    EXPECT_GT(c.done, c.started);
  }
}

TEST(AcceleratorServer, WindowCoalescesNearbyArrivals) {
  {
    ServerHarness h{{.max_batch = 8, .batch_window = 2.0_ms,
                     .queue_capacity = 256}};
    h.submit_at(Duration{}, 0);
    h.submit_at(Duration::from_millis_f(0.5), 1);
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0].batch_size, 2u);  // one shared batch
    EXPECT_EQ(h.server.batches_launched(), 1u);
  }
  {
    ServerHarness h{{.max_batch = 8, .batch_window = 1.0_ms,
                     .queue_capacity = 256}};
    h.submit_at(Duration{}, 0);
    h.submit_at(Duration::from_millis_f(8.0), 1);  // beyond window + service
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0].batch_size, 1u);
    EXPECT_EQ(h.completions[1].batch_size, 1u);
    EXPECT_EQ(h.server.batches_launched(), 2u);
  }
}

TEST(AcceleratorServer, FullBatchSkipsTheWindow) {
  // Four requests at t=0 with max_batch 4: the batch must launch
  // immediately, not after the (long) window.
  ServerHarness h{{.max_batch = 4, .batch_window = 50.0_ms,
                   .queue_capacity = 256}};
  for (std::uint64_t i = 0; i < 4; ++i) h.submit_at(Duration{}, i);
  h.sim.run();
  ASSERT_EQ(h.completions.size(), 4u);
  EXPECT_EQ(h.completions[0].batch_size, 4u);
  EXPECT_LT(h.completions[0].done.ms(), 25.0);  // far below the window
}

TEST(AcceleratorServer, BoundedQueueDropsOverflow) {
  ServerHarness h{{.max_batch = 1, .batch_window = Duration{},
                   .queue_capacity = 4}};
  // One submission event: the first launches immediately (max_batch 1),
  // the next four fill the queue, the rest must drop.
  h.sim.schedule_at(TimePoint{}, [&h] {
    int accepted = 0;
    for (std::uint64_t i = 0; i < 10; ++i) {
      if (h.server.submit(i, [&h](const AcceleratorServer::Completion& c) {
            h.completions.push_back(c);
          })) {
        ++accepted;
      }
    }
    EXPECT_EQ(accepted, 5);
  });
  h.sim.run();
  EXPECT_EQ(h.server.dropped(), 5u);
  EXPECT_EQ(h.server.completed(), 5u);
  ASSERT_EQ(h.completions.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_EQ(h.completions[i].request_id, i);
}

TEST(AcceleratorServer, ContinuousLaunchesImmediatelyAndReformsBatches) {
  // Iteration-level scheduling: a lone request on an idle server launches
  // as a batch of one at once — the (long) window never arms — and the
  // arrivals queued during its service re-form the next batch at the
  // completion, not at a timer.
  ServerHarness h{{.max_batch = 8, .batch_window = 50.0_ms,
                   .queue_capacity = 256, .continuous = true}};
  h.submit_at(Duration{}, 0);
  for (std::uint64_t i = 1; i <= 5; ++i)
    h.submit_at(Duration::from_millis_f(0.1), i);
  h.sim.run();
  ASSERT_EQ(h.completions.size(), 6u);
  EXPECT_EQ(h.completions[0].batch_size, 1u);   // launched alone, at once
  EXPECT_LT(h.completions[0].done.ms(), 25.0);  // far below the window
  EXPECT_EQ(h.completions[1].batch_size, 5u);   // re-formed at completion
  EXPECT_EQ(h.server.batches_launched(), 2u);
}

TEST(AcceleratorServer, LanesPreemptByWholeLanesAtBatchFormation) {
  netsim::Simulator sim(1);
  AcceleratorServer::BatchingConfig config;
  config.max_batch = 4;
  config.queue_capacity = 16;
  config.continuous = true;
  config.lanes = 2;
  AcceleratorServer server(sim, AcceleratorProfile::edge_gpu(),
                           ModelZoo::at("det-base"), config);
  std::vector<std::uint32_t> order;
  server.set_completion_sink(
      [&order](std::uint32_t slot, std::uint64_t,
               const AcceleratorServer::Completion&) { order.push_back(slot); });
  sim.schedule_at(TimePoint{}, [&server] {
    (void)server.submit(std::uint32_t{0}, 0, 0);  // launches alone
  });
  // While slot 0 executes: lane 1 queues four requests FIRST, then lane 0
  // queues four. Batch formation drains lanes in index order, so the
  // late-arriving lane-0 work preempts the whole queued lane-1 backlog —
  // but only at the formation boundary, never mid-batch.
  sim.schedule_at(TimePoint{} + Duration::micros(50), [&server] {
    for (std::uint32_t s = 1; s <= 4; ++s) (void)server.submit(s, 0, 1);
    for (std::uint32_t s = 10; s <= 13; ++s) (void)server.submit(s, 0, 0);
  });
  sim.run();
  const std::vector<std::uint32_t> want{0, 10, 11, 12, 13, 1, 2, 3, 4};
  EXPECT_EQ(order, want);
  EXPECT_EQ(server.batches_launched(), 3u);
  EXPECT_EQ(server.dropped_queue_full(0), 0u);
  EXPECT_EQ(server.dropped_queue_full(1), 0u);
}

// ------------------------------------------------------------------ offload

TEST(Offload, LatencyGreedyIsMonotoneTowardsEdge) {
  const OffloadPlanner planner{OffloadPlanner::Config{}};
  const Duration edge_q = Duration::from_millis_f(1.0);
  const Duration cloud_q = Duration::from_millis_f(3.0);
  for (const auto& model : ModelZoo::profiles()) {
    bool edge_seen = false;
    // Sweep the access RTT downwards: once the edge wins, a faster link
    // must never flip the request away from it.
    for (const double rtt_ms : {80.0, 40.0, 20.0, 10.0, 5.0, 2.0, 1.0, 0.2}) {
      const auto pick = planner.choose(OffloadPolicy::kLatencyGreedy, model,
                                       Duration::from_millis_f(rtt_ms),
                                       edge_q, cloud_q);
      if (edge_seen) {
        EXPECT_EQ(pick.tier, ExecutionTier::kEdge)
            << model.name << " flipped away from edge at " << rtt_ms << " ms";
      }
      if (pick.tier == ExecutionTier::kEdge) edge_seen = true;
    }
  }
}

TEST(Offload, LatencyGreedyPicksTheFastestFeasibleTier) {
  const OffloadPlanner planner{OffloadPlanner::Config{}};
  const auto& model = ModelZoo::at("seg-large");
  const Duration rtt = Duration::from_millis_f(4.0);
  const Duration edge_q = Duration::from_millis_f(1.0);
  const Duration cloud_q = Duration::from_millis_f(3.0);
  const auto pick = planner.choose(OffloadPolicy::kLatencyGreedy, model, rtt,
                                   edge_q, cloud_q);
  for (const auto tier : kAllTiers) {
    const auto e = planner.estimate(tier, model, rtt, edge_q, cloud_q);
    if (e.feasible) EXPECT_LE(pick.total, e.total) << to_string(tier);
  }
}

TEST(Offload, EnergyAwareRespectsTheBudget) {
  OffloadPlanner::Config config;
  config.latency_budget = Duration::from_millis_f(20.0);
  const OffloadPlanner planner{config};
  const Duration edge_q = Duration::from_millis_f(1.0);
  const Duration cloud_q = Duration::from_millis_f(3.0);
  for (const auto& model : ModelZoo::profiles()) {
    for (const double rtt_ms : {0.5, 2.0, 5.0, 10.0}) {
      const Duration rtt = Duration::from_millis_f(rtt_ms);
      bool any_within = false;
      for (const auto tier : kAllTiers) {
        const auto e = planner.estimate(tier, model, rtt, edge_q, cloud_q);
        if (e.feasible && e.total <= config.latency_budget) any_within = true;
      }
      const auto pick = planner.choose(OffloadPolicy::kEnergyAware, model, rtt,
                                       edge_q, cloud_q);
      if (any_within) {
        EXPECT_LE(pick.total, config.latency_budget)
            << model.name << " @ " << rtt_ms;
        // And it is the cheapest battery option among budget-feasible tiers.
        for (const auto tier : kAllTiers) {
          const auto e = planner.estimate(tier, model, rtt, edge_q, cloud_q);
          if (e.feasible && e.total <= config.latency_budget)
            EXPECT_LE(pick.device_joules, e.device_joules + 1e-12)
                << model.name << " " << to_string(tier);
        }
      }
    }
  }
}

TEST(Offload, StaticPoliciesAndInfeasibleDevice) {
  const OffloadPlanner planner{OffloadPlanner::Config{}};
  const Duration rtt = Duration::from_millis_f(5.0);
  const Duration q = Duration::from_millis_f(1.0);
  const auto edge_pick = planner.choose(OffloadPolicy::kStaticEdge,
                                        ModelZoo::at("det-base"), rtt, q, q);
  EXPECT_EQ(edge_pick.tier, ExecutionTier::kEdge);
  EXPECT_TRUE(edge_pick.feasible);

  // caption-large does not fit the device NPU: the static-device policy
  // reports infeasibility, the adaptive ones route around it.
  const auto device_pick = planner.choose(
      OffloadPolicy::kStaticDevice, ModelZoo::at("caption-large"), rtt, q, q);
  EXPECT_FALSE(device_pick.feasible);
  const auto greedy = planner.choose(OffloadPolicy::kLatencyGreedy,
                                     ModelZoo::at("caption-large"), rtt, q, q);
  EXPECT_TRUE(greedy.feasible);
  EXPECT_NE(greedy.tier, ExecutionTier::kDevice);
}

// ------------------------------------------------------------------- energy

TEST(Energy, BreakdownSumsAndAmortises) {
  const InferenceEnergyModel energy{InferenceEnergyModel::Config{}};
  const auto& model = ModelZoo::at("det-base");
  const auto edge = AcceleratorProfile::edge_gpu();

  // 40 ms round trip: comfortably beyond the ~19 ms uplink airtime of
  // det-base at the default 75 Mbps, so an idle-wait phase exists.
  const auto one = energy.offloaded(model, edge, 40.0_ms, 1);
  EXPECT_GT(one.uplink_j, 0.0);
  EXPECT_GT(one.downlink_j, 0.0);
  EXPECT_GT(one.wait_j, 0.0);
  EXPECT_GT(one.server_compute_j, 0.0);
  EXPECT_DOUBLE_EQ(one.device_total(),
                   one.uplink_j + one.downlink_j + one.wait_j);
  EXPECT_DOUBLE_EQ(one.total(), one.device_total() + one.server_compute_j);

  const auto eight = energy.offloaded(model, edge, 40.0_ms, 8);
  EXPECT_LT(eight.server_compute_j, one.server_compute_j);  // amortised
  EXPECT_DOUBLE_EQ(eight.uplink_j, one.uplink_j);  // device side unchanged

  const auto local =
      energy.local(AcceleratorProfile::device_npu(), model);
  EXPECT_GT(local.device_compute_j, 0.0);
  EXPECT_DOUBLE_EQ(local.uplink_j + local.downlink_j + local.wait_j, 0.0);
}

// ------------------------------------------------------------ serving study

TEST(ServingStudy, DeterministicForFixedSeed) {
  ServingStudy::Config config;
  config.requests = 500;
  config.arrivals_per_second = 800.0;
  config.seed = 42;
  const auto a = ServingStudy::run(config);
  const auto b = ServingStudy::run(config);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.e2e_ms.mean(), b.e2e_ms.mean());
  EXPECT_EQ(a.e2e_samples_ms, b.e2e_samples_ms);

  config.seed = 43;
  const auto c = ServingStudy::run(config);
  EXPECT_NE(a.e2e_ms.mean(), c.e2e_ms.mean());
}

TEST(ServingStudy, ConservesRequests) {
  ServingStudy::Config config;
  config.requests = 800;
  config.arrivals_per_second = 8000.0;  // deliberately overloaded...
  config.batching.queue_capacity = 8;   // ...with a tiny queue
  config.seed = 7;
  const auto report = ServingStudy::run(config);
  EXPECT_EQ(report.completed + report.dropped, 800u);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(report.e2e_samples_ms.size(), report.completed);
  EXPECT_GE(report.batch_size.min(), 1.0);
  EXPECT_LE(report.batch_size.max(), double(config.batching.max_batch));
}

// ----------------------------------------------- inference-backed AR game

TEST(ArGameInference, InferenceDelayGatesConsistency) {
  apps::ArGameSession::Config config;
  config.frames = 4000;
  const auto perfect = [](Rng&) { return Duration::micros(100); };

  config.inference = [](Rng&) { return Duration::micros(200); };
  const auto fast = apps::ArGameSession{perfect, config}.run();
  EXPECT_DOUBLE_EQ(fast.consistent_frame_share, 1.0);

  config.inference = [](Rng&) { return Duration::from_millis_f(30.0); };
  const auto slow = apps::ArGameSession{perfect, config}.run();
  EXPECT_DOUBLE_EQ(slow.consistent_frame_share, 0.0);
  EXPECT_DOUBLE_EQ(slow.mis_registration_share, 1.0);
}

// -------------------------------------------------------------- scenarios

TEST(ServingReport, WithinMatchesNaiveCountForManyBudgets) {
  ServingStudy::Config config;
  config.requests = 600;
  config.arrivals_per_second = 800.0;
  config.seed = 41;
  const auto report = ServingStudy::run(config);
  ASSERT_GT(report.e2e_samples_ms.size(), 0u);
  // The sorted-pass within() must agree with a naive scan at every
  // probed budget, including degenerate ones.
  for (const double budget_ms : {0.0, 0.5, 1.0, 2.0, 5.0, 20.0, 1e9}) {
    std::size_t naive = 0;
    for (const double ms : report.e2e_samples_ms)
      if (ms <= budget_ms) ++naive;
    EXPECT_DOUBLE_EQ(report.within(Duration::from_millis_f(budget_ms)),
                     double(naive) / double(report.e2e_samples_ms.size()))
        << "budget=" << budget_ms;
  }
}

TEST(ServingReport, WithinOnEmptyReportIsZero) {
  ServingStudy::Report report;
  EXPECT_EQ(report.within(Duration::from_millis_f(10.0)), 0.0);
}

TEST(ServingReport, WithinOnHandAssembledReportAfterFinalize) {
  // Reports built outside run() populate their sorted snapshot through
  // finalize(); within() then answers by binary search — the O(n) scan
  // path no longer exists.
  ServingStudy::Report report;
  report.e2e_samples_ms = {5.0, 1.0, 9.0, 3.0, 7.0};
  report.finalize();
  EXPECT_DOUBLE_EQ(report.within(Duration::from_millis_f(4.0)), 0.4);
  EXPECT_DOUBLE_EQ(report.within(Duration::from_millis_f(9.0)), 1.0);
  EXPECT_DOUBLE_EQ(report.within(Duration::from_millis_f(0.5)), 0.0);
  // Appending more samples re-stales the snapshot; finalize() refreshes.
  report.e2e_samples_ms.push_back(2.0);
  report.finalize();
  EXPECT_DOUBLE_EQ(report.within(Duration::from_millis_f(4.0)), 0.5);
}

TEST(EdgeAiScenarios, RegisteredAndListed) {
  core::ScenarioRegistry registry;
  core::register_paper_scenarios(registry);
  EXPECT_GE(registry.size(), 24u);
  for (const char* name : {"edge-inference-latency", "batching-ablation",
                           "offload-policy", "energy-inference"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(EdgeAiScenarios, DeterministicForFixedSeed) {
  core::ScenarioRegistry registry;
  core::register_paper_scenarios(registry);
  for (const char* name : {"edge-inference-latency", "batching-ablation",
                           "offload-policy", "energy-inference"}) {
    const core::Scenario* s = registry.find(name);
    ASSERT_NE(s, nullptr) << name;
    core::RunContext ctx;
    ctx.seed = 5;
    ctx.threads = 2;
    EXPECT_EQ(render(*s, s->run(ctx)), render(*s, s->run(ctx))) << name;
  }
}

TEST(EdgeAiScenarios, SeedChangesTheResult) {
  core::ScenarioRegistry registry;
  core::register_paper_scenarios(registry);
  for (const char* name : {"edge-inference-latency", "batching-ablation",
                           "offload-policy", "energy-inference"}) {
    const core::Scenario* s = registry.find(name);
    ASSERT_NE(s, nullptr) << name;
    core::RunContext a;
    a.seed = 5;
    core::RunContext b;
    b.seed = 6;
    EXPECT_NE(render(*s, s->run(a)), render(*s, s->run(b))) << name;
  }
}

TEST(EdgeAiScenarios, ThreadCountDoesNotChangeResults) {
  core::ScenarioRegistry registry;
  core::register_paper_scenarios(registry);
  for (const char* name : {"edge-inference-latency", "batching-ablation",
                           "offload-policy", "energy-inference"}) {
    const core::Scenario* s = registry.find(name);
    ASSERT_NE(s, nullptr) << name;
    core::RunContext serial;
    serial.seed = 11;
    serial.threads = 1;
    core::RunContext wide = serial;
    wide.threads = 8;
    EXPECT_EQ(render(*s, s->run(serial)), render(*s, s->run(wide))) << name;
  }
}

}  // namespace
}  // namespace sixg::edgeai
