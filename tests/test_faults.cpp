/// Fault model + failure-aware dispatch harness, three layers deep:
///   1. plan: FaultPlan generation is pure, sorted, stream-independent
///      and gated by FaultConfig::any(); the injector dispatches every
///      entry to its hook at the scheduled instant;
///   2. server: the crash/drain/recover state machine — FIFO loss
///      reporting, epoch-guarded batch completion, health-gated
///      admission, straggler slowdown;
///   3. fleet: timeouts, retries, hedging and shedding settle every
///      request exactly once (delivered + failed == offered), stay
///      deterministic under fault churn, and hold across shards at any
///      worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "edgeai/accelerator.hpp"
#include "edgeai/fleet.hpp"
#include "edgeai/model.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "netsim/simulator.hpp"
#include "stats/distributions.hpp"

namespace sixg {
namespace {

using edgeai::AcceleratorProfile;
using edgeai::AcceleratorServer;
using edgeai::FleetStudy;
using edgeai::ServerHealth;
using faults::FaultConfig;
using faults::FaultEvent;
using faults::FaultKind;
using faults::FaultPlan;
using netsim::Simulator;

// --------------------------------------------------------------- plan

FaultConfig crashy_config() {
  FaultConfig config;
  config.server_crash_rate_per_s = 2.0;
  config.server_mttr = Duration::millis(40);
  config.horizon = Duration::seconds(5);
  config.servers = 4;
  return config;
}

TEST(FaultPlan, GenerateIsPureAndSortedByTime) {
  const auto config = crashy_config();
  const auto a = FaultPlan::generate(config, 71);
  const auto b = FaultPlan::generate(config, 71);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at.ns(), b.events[i].at.ns()) << i;
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].target, b.events[i].target) << i;
    if (i > 0) EXPECT_GE(a.events[i].at.ns(), a.events[i - 1].at.ns()) << i;
  }
  const auto reseeded = FaultPlan::generate(config, 72);
  ASSERT_FALSE(reseeded.empty());
  EXPECT_NE(a.events.front().at.ns(), reseeded.events.front().at.ns());
}

TEST(FaultPlan, EveryCrashHasItsRecoverAtCrashPlusMttr) {
  const auto plan = FaultPlan::generate(crashy_config(), 9);
  std::vector<std::int64_t> down_until(4, -1);
  for (const auto& e : plan.events) {
    if (e.kind == FaultKind::kServerCrash) {
      EXPECT_LT(down_until[e.target], e.at.ns()) << "overlapping windows";
      EXPECT_GT(e.duration.ns(), 0);
      down_until[e.target] = (e.at + e.duration).ns();
    } else if (e.kind == FaultKind::kServerRecover) {
      EXPECT_EQ(e.at.ns(), down_until[e.target]) << "unmatched recover";
    }
  }
}

TEST(FaultPlan, AnyGatesGeneration) {
  FaultConfig off;
  EXPECT_FALSE(off.any());
  EXPECT_TRUE(FaultPlan::generate(off, 1).empty());
  // Rates without a horizon generate nothing at the plan layer (the
  // fleet defaults the horizon before it gets here).
  FaultConfig no_horizon;
  no_horizon.server_crash_rate_per_s = 5.0;
  no_horizon.servers = 2;
  EXPECT_FALSE(no_horizon.any());
  EXPECT_TRUE(FaultPlan::generate(no_horizon, 1).empty());
  // A scripted event is activity on its own.
  FaultConfig scripted;
  scripted.scripted.push_back(
      {Duration::millis(5), Duration::millis(1), 1.0,
       FaultKind::kServerCrash, 0});
  EXPECT_TRUE(scripted.any());
  EXPECT_EQ(FaultPlan::generate(scripted, 1).events.size(), 1u);
}

TEST(FaultPlan, StreamsAreIndependentPerKindAndTarget) {
  // Adding a straggler process must not move a single crash event, and
  // adding a server must not move the existing servers' events: every
  // (stream, target) pair owns its own derived RNG.
  const auto base = FaultPlan::generate(crashy_config(), 13);
  auto with_stragglers = crashy_config();
  with_stragglers.straggler_rate_per_s = 3.0;
  with_stragglers.straggler_mean = Duration::millis(30);
  auto more_servers = crashy_config();
  more_servers.servers = 6;
  for (const auto& plan : {FaultPlan::generate(with_stragglers, 13),
                           FaultPlan::generate(more_servers, 13)}) {
    std::vector<FaultEvent> crashes;
    for (const auto& e : plan.events) {
      if ((e.kind == FaultKind::kServerCrash ||
           e.kind == FaultKind::kServerRecover) &&
          e.target < 4)
        crashes.push_back(e);
    }
    ASSERT_EQ(crashes.size(), base.events.size());
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      EXPECT_EQ(crashes[i].at.ns(), base.events[i].at.ns()) << i;
      EXPECT_EQ(crashes[i].kind, base.events[i].kind) << i;
      EXPECT_EQ(crashes[i].target, base.events[i].target) << i;
    }
  }
}

TEST(FaultInjector, DispatchesEveryEventAtItsInstantInPlanOrder) {
  FaultConfig config;
  config.scripted = {
      {Duration::millis(2), Duration::millis(3), 1.0, FaultKind::kServerCrash,
       1},
      {Duration::millis(5), {}, 1.0, FaultKind::kServerRecover, 1},
      {Duration::millis(4), Duration::millis(2), 2.5,
       FaultKind::kStraggleBegin, 0},
      {Duration::millis(6), {}, 1.0, FaultKind::kStraggleEnd, 0},
  };
  const auto plan = FaultPlan::generate(config, 1);
  ASSERT_EQ(plan.events.size(), 4u);

  Simulator sim;
  faults::FaultInjector injector;
  struct Seen {
    std::int64_t at_ns;
    FaultKind kind;
    std::uint32_t target;
  };
  std::vector<Seen> seen;
  faults::FaultInjector::Hooks hooks;
  hooks.server_down = [&](std::uint32_t s, Duration mttr) {
    EXPECT_EQ(mttr.ns(), Duration::millis(3).ns());
    seen.push_back({sim.now().ns(), FaultKind::kServerCrash, s});
  };
  hooks.server_up = [&](std::uint32_t s) {
    seen.push_back({sim.now().ns(), FaultKind::kServerRecover, s});
  };
  hooks.straggle_begin = [&](std::uint32_t s, double factor) {
    EXPECT_EQ(factor, 2.5);
    seen.push_back({sim.now().ns(), FaultKind::kStraggleBegin, s});
  };
  // straggle_end left unset on purpose: skipped but still counted.
  injector.arm(sim, plan, std::move(hooks));
  sim.run();

  EXPECT_EQ(injector.fired(), 4u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].at_ns, Duration::millis(2).ns());
  EXPECT_EQ(seen[0].kind, FaultKind::kServerCrash);
  EXPECT_EQ(seen[0].target, 1u);
  EXPECT_EQ(seen[1].at_ns, Duration::millis(4).ns());
  EXPECT_EQ(seen[1].kind, FaultKind::kStraggleBegin);
  EXPECT_EQ(seen[2].at_ns, Duration::millis(5).ns());
  EXPECT_EQ(seen[2].kind, FaultKind::kServerRecover);
}

// ------------------------------------------------------------- server

AcceleratorServer::BatchingConfig small_batches() {
  AcceleratorServer::BatchingConfig config;
  config.max_batch = 4;
  config.batch_window = Duration::from_millis_f(1.0);
  config.queue_capacity = 16;
  return config;
}

TEST(AcceleratorFaults, FailLosesInflightThenQueueInFifoOrder) {
  Simulator sim;
  AcceleratorServer server{sim, AcceleratorProfile::edge_gpu(),
                           edgeai::ModelZoo::at("det-base"), small_batches()};
  std::vector<std::uint32_t> completed;
  std::vector<std::uint32_t> lost;
  server.set_completion_sink(
      [&](std::uint32_t slot, std::uint64_t, const AcceleratorServer::Completion&) {
        completed.push_back(slot);
      });
  server.set_failure_sink(
      [&](std::uint32_t slot, std::uint64_t payload) {
        EXPECT_EQ(payload, 100u + slot);
        lost.push_back(slot);
      });
  // Four launch immediately as a full batch; two more wait in the queue.
  for (std::uint32_t slot = 0; slot < 6; ++slot)
    ASSERT_TRUE(server.submit(slot, 100u + slot));
  ASSERT_TRUE(server.busy());
  ASSERT_EQ(server.queue_depth(), 2u);

  server.fail();
  EXPECT_EQ(server.health(), ServerHealth::kDown);
  EXPECT_FALSE(server.accepting());
  EXPECT_EQ(lost, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(server.lost_to_crashes(), 6u);

  // Down: submissions are refused and counted, not queued.
  EXPECT_FALSE(server.submit(9, 109));
  EXPECT_EQ(server.rejected_unhealthy(), 1u);

  // The in-flight batch's completion event is still pending; the crash
  // epoch voids it — nothing may surface after sim.run().
  server.recover();
  EXPECT_EQ(server.health(), ServerHealth::kUp);
  ASSERT_TRUE(server.submit(7, 107));
  sim.run();
  EXPECT_EQ(completed, (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(server.completed(), 1u);
}

TEST(AcceleratorFaults, DrainFinishesQueuedWorkButRejectsNew) {
  Simulator sim;
  AcceleratorServer server{sim, AcceleratorProfile::edge_gpu(),
                           edgeai::ModelZoo::at("det-base"), small_batches()};
  std::vector<std::uint32_t> completed;
  server.set_completion_sink(
      [&](std::uint32_t slot, std::uint64_t, const AcceleratorServer::Completion&) {
        completed.push_back(slot);
      });
  ASSERT_TRUE(server.submit(0));
  ASSERT_TRUE(server.submit(1));
  server.drain();
  EXPECT_EQ(server.health(), ServerHealth::kDraining);
  EXPECT_FALSE(server.accepting());
  EXPECT_FALSE(server.submit(2));
  EXPECT_EQ(server.rejected_unhealthy(), 1u);
  sim.run();
  EXPECT_EQ(completed, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(server.lost_to_crashes(), 0u);
  server.recover();
  EXPECT_TRUE(server.accepting());
}

TEST(AcceleratorFaults, StragglerMultiplierStretchesServiceTime) {
  const auto run_one = [](double multiplier) {
    Simulator sim;
    AcceleratorServer server{sim, AcceleratorProfile::edge_gpu(),
                             edgeai::ModelZoo::at("det-base"),
                             small_batches()};
    TimePoint done;
    server.set_completion_sink(
        [&](std::uint32_t, std::uint64_t,
            const AcceleratorServer::Completion& c) { done = c.done; });
    server.set_service_rate_multiplier(multiplier);
    EXPECT_TRUE(server.submit(0));
    sim.run();
    return done;
  };
  const auto nominal = run_one(1.0);
  const auto straggling = run_one(3.0);
  EXPECT_GT(straggling.ns(), nominal.ns());
  // Compute stretches; the batch window (the wait before launch) does
  // not, so the slowdown is less than the full 3x on the total.
  EXPECT_LT(straggling.ns(), nominal.ns() * 3);
}

// -------------------------------------------------------------- fleet

FleetStudy::DelaySampler synthetic_hop(double shift_s, double mean_s) {
  const stats::ShiftedExponential hop{shift_s, mean_s};
  return [hop](Rng& rng) { return Duration::from_seconds_f(hop.sample(rng)); };
}

FleetStudy::Config fleet_config(std::size_t edges, std::uint64_t seed) {
  FleetStudy::Config config;
  config.model = edgeai::ModelZoo::at("det-base");
  config.policy = edgeai::DispatchPolicy::kJoinShortestQueue;
  config.arrivals_per_second = 6000.0;
  config.requests = 20000;
  config.slo = Duration::from_millis_f(20.0);
  config.energy.uplink = DataRate::gbps(2);
  config.energy.downlink = DataRate::gbps(4);
  config.seed = seed;
  for (std::size_t i = 0; i < edges; ++i) {
    FleetStudy::ServerSpec spec;
    spec.accelerator = AcceleratorProfile::edge_gpu();
    spec.batching.max_batch = 8;
    spec.batching.batch_window = Duration::from_millis_f(1.0);
    spec.batching.queue_capacity = 64;
    spec.tier = edgeai::ExecutionTier::kEdge;
    spec.uplink = synthetic_hop(0.3e-3, 0.5e-3);
    spec.downlink = synthetic_hop(0.3e-3, 0.5e-3);
    config.servers.push_back(std::move(spec));
  }
  return config;
}

/// Every request settles exactly once: delivered (one e2e sample) or
/// failed (shed, timed out, or out of retry budget) — never both, never
/// neither. The single most load-bearing invariant of the hardened
/// lifecycle; a stale timer or a double-settled hedge twin breaks it.
void expect_settled_exactly_once(const FleetStudy::Report& report,
                                 std::uint64_t offered) {
  EXPECT_EQ(report.e2e_ms.count() + report.failed, offered);
  EXPECT_LE(report.within_slo, report.e2e_ms.count());
  EXPECT_LE(report.timed_out + report.shed, report.failed);
}

TEST(FleetFaults, CrashesAreTerminalWithoutRetries) {
  auto config = fleet_config(3, 5);
  config.faults.server_crash_rate_per_s = 0.5;
  config.faults.server_mttr = Duration::millis(100);
  const auto report = FleetStudy::run(config);
  EXPECT_GT(report.fault_events, 0u);
  EXPECT_GT(report.lost_to_crashes, 0u);
  EXPECT_GT(report.failed, 0u);
  EXPECT_LT(report.availability(), 1.0);
  EXPECT_EQ(report.retries, 0u);
  expect_settled_exactly_once(report, config.requests);
  // The per-server loss/rejection counters roll up into the report.
  std::uint64_t lost = 0;
  for (const auto& s : report.servers) lost += s.lost;
  EXPECT_EQ(lost, report.lost_to_crashes);
}

TEST(FleetFaults, RetriesFailOverAndRecoverAvailability) {
  auto config = fleet_config(3, 5);
  config.faults.server_crash_rate_per_s = 0.5;
  config.faults.server_mttr = Duration::millis(100);
  const auto baseline = FleetStudy::run(config);
  config.resilience.max_retries = 3;
  config.resilience.retry_backoff = Duration::micros(200);
  const auto retried = FleetStudy::run(config);
  EXPECT_GT(retried.retries, 0u);
  EXPECT_GT(retried.availability(), baseline.availability());
  expect_settled_exactly_once(retried, config.requests);
}

TEST(FleetFaults, DeadlineTimesOutTheTail) {
  auto config = fleet_config(2, 17);  // 2 GPUs: a real queueing tail
  config.resilience.deadline = Duration::from_millis_f(6.0);
  const auto report = FleetStudy::run(config);
  EXPECT_GT(report.timed_out, 0u);
  EXPECT_LT(report.e2e_q.quantile(1.0), 6.0 + 1e-9);  // expiry is terminal
  expect_settled_exactly_once(report, config.requests);
}

TEST(FleetFaults, HedgesRaceAndTheLoserIsDiscarded) {
  auto config = fleet_config(3, 23);
  config.resilience.hedge_delay = Duration::from_millis_f(3.0);
  const auto report = FleetStudy::run(config);
  EXPECT_GT(report.hedges, 0u);
  EXPECT_GT(report.hedge_wins, 0u);
  EXPECT_LE(report.hedge_wins, report.hedges);
  expect_settled_exactly_once(report, config.requests);
  // Server completion counters count hedge losers too; the delivered
  // count never exceeds them.
  EXPECT_GE(report.completed, report.e2e_ms.count());
}

TEST(FleetFaults, SheddingBoundsFleetLoad) {
  auto config = fleet_config(2, 29);
  config.resilience.shed_queue_depth = 24;
  const auto report = FleetStudy::run(config);
  EXPECT_GT(report.shed, 0u);
  expect_settled_exactly_once(report, config.requests);
}

/// The satellite regression: slots recycle furiously under a tight
/// deadline + retries + hedging + crash churn. A deadline/hedge/backoff
/// timer surviving its slot's release would fire against whatever
/// request reused the slot — the epoch guard must make that impossible,
/// which the settle-exactly-once invariant and run-to-run digest
/// equality observe.
TEST(FleetFaults, RecycledSlotsNeverSeeStaleTimersUnderChurn) {
  auto config = fleet_config(2, 31);
  config.requests = 30000;
  config.arrivals_per_second = 8000.0;
  config.faults.server_crash_rate_per_s = 1.0;
  config.faults.server_mttr = Duration::millis(50);
  config.resilience.deadline = Duration::from_millis_f(6.0);
  config.resilience.max_retries = 2;
  config.resilience.retry_backoff = Duration::micros(300);
  config.resilience.hedge_delay = Duration::from_millis_f(2.0);
  const auto a = FleetStudy::run(config);
  EXPECT_GT(a.timed_out, 0u);
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(a.hedges, 0u);
  expect_settled_exactly_once(a, config.requests);
  const auto b = FleetStudy::run(config);
  EXPECT_EQ(edgeai::fleet_report_digest(a), edgeai::fleet_report_digest(b));
}

TEST(FleetFaults, StragglerWindowsDegradeTheTailDeterministically) {
  auto config = fleet_config(3, 37);
  config.faults.straggler_rate_per_s = 0.4;
  config.faults.straggler_mean = Duration::millis(200);
  config.faults.straggler_factor = 6.0;
  const auto slowed = FleetStudy::run(config);
  const auto nominal = FleetStudy::run(fleet_config(3, 37));
  EXPECT_GT(slowed.fault_events, 0u);
  EXPECT_GT(slowed.e2e_q.quantile(0.999), nominal.e2e_q.quantile(0.999));
  EXPECT_EQ(edgeai::fleet_report_digest(slowed),
            edgeai::fleet_report_digest(FleetStudy::run(config)));
}

// ------------------------------------------------------------ sharded

TEST(ShardedFleetFaults, OneFaultedShardDigestsIdenticalToSerial) {
  auto shard = fleet_config(3, 11);
  shard.requests = 10000;
  shard.faults.server_crash_rate_per_s = 0.6;
  shard.faults.server_mttr = Duration::millis(60);
  shard.resilience.max_retries = 2;
  shard.resilience.retry_backoff = Duration::micros(250);
  shard.resilience.deadline = Duration::from_millis_f(15.0);
  const auto serial = FleetStudy::run(shard);
  edgeai::ShardedFleetStudy::Config sharded;
  sharded.shard = shard;
  sharded.shards = 1;
  sharded.window = Duration::millis(1);
  sharded.remote_fraction = 0.25;  // inert with one shard
  const auto windowed = edgeai::ShardedFleetStudy::run(sharded);
  EXPECT_GT(serial.fault_events, 0u);
  EXPECT_EQ(edgeai::fleet_report_digest(serial),
            edgeai::fleet_report_digest(windowed));
}

TEST(ShardedFleetFaults, FaultedCityDigestsIdenticalAcrossWorkerCounts) {
  const auto make = [](unsigned workers) {
    edgeai::ShardedFleetStudy::Config config;
    config.shard = fleet_config(3, 41);
    config.shard.requests = 8000;
    config.shard.faults.server_crash_rate_per_s = 0.8;
    config.shard.faults.server_mttr = Duration::millis(60);
    config.shard.resilience.max_retries = 2;
    config.shard.resilience.retry_backoff = Duration::micros(250);
    config.shard.resilience.deadline = Duration::from_millis_f(15.0);
    config.shards = 4;
    config.workers = workers;
    config.window = Duration::from_millis_f(1.5);
    config.remote_fraction = 0.25;
    config.remote_uplink = synthetic_hop(1.5e-3, 0.4e-3);
    config.remote_downlink = synthetic_hop(1.5e-3, 0.4e-3);
    return config;
  };
  const auto reference = edgeai::ShardedFleetStudy::run(make(1));
  // Faults and remote traffic both actually flow: crashes fire in every
  // pod (per-pod plans from rebased seeds) and crashed remote copies
  // fail over through the mailboxes.
  EXPECT_GT(reference.fault_events, 0u);
  EXPECT_GT(reference.remote_requests, 0u);
  EXPECT_GT(reference.retries, 0u);
  const std::uint64_t want = edgeai::fleet_report_digest(reference);
  for (const unsigned workers : {2u, 8u}) {
    EXPECT_EQ(edgeai::fleet_report_digest(
                  edgeai::ShardedFleetStudy::run(make(workers))),
              want)
        << "workers " << workers;
  }
}

}  // namespace
}  // namespace sixg
