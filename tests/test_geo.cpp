#include <gtest/gtest.h>

#include "geo/coords.hpp"
#include "geo/gazetteer.hpp"
#include "geo/grid.hpp"
#include "geo/population.hpp"

namespace sixg::geo {
namespace {

// ---------------------------------------------------------------- coords

TEST(Coords, HaversineKnownDistances) {
  const auto& gaz = Gazetteer::central_europe();
  // Published city distances (great circle), tolerance 2 %.
  EXPECT_NEAR(gaz.distance_km("Klagenfurt", "Vienna"), 234.0, 5.0);
  EXPECT_NEAR(gaz.distance_km("Vienna", "Prague"), 252.0, 6.0);
  EXPECT_NEAR(gaz.distance_km("Prague", "Bucharest"), 1080.0, 25.0);
  EXPECT_NEAR(gaz.distance_km("Bucharest", "Vienna"), 855.0, 20.0);
}

TEST(Coords, DistanceIsAMetric) {
  const LatLon a{46.62, 14.31};
  const LatLon b{48.21, 16.37};
  const LatLon c{50.08, 14.44};
  EXPECT_DOUBLE_EQ(distance_km(a, a), 0.0);
  EXPECT_NEAR(distance_km(a, b), distance_km(b, a), 1e-9);
  EXPECT_LE(distance_km(a, c), distance_km(a, b) + distance_km(b, c) + 1e-9);
}

TEST(Coords, ApproxMatchesHaversineLocally) {
  const LatLon a{46.62, 14.31};
  const LatLon b{46.70, 14.40};  // ~11 km away
  EXPECT_NEAR(approx_distance_km(a, b), distance_km(a, b),
              distance_km(a, b) * 0.01);
}

TEST(Coords, OffsetRoundTrip) {
  const LatLon origin{46.6, 14.3};
  for (double bearing : {0.0, 90.0, 180.0, 270.0, 45.0}) {
    const LatLon moved = offset(origin, 10.0, bearing);
    EXPECT_NEAR(distance_km(origin, moved), 10.0, 0.01);
  }
}

TEST(Coords, BearingCardinalDirections) {
  const LatLon origin{46.6, 14.3};
  EXPECT_NEAR(bearing_deg(origin, offset(origin, 5.0, 0.0)), 0.0, 0.5);
  EXPECT_NEAR(bearing_deg(origin, offset(origin, 5.0, 90.0)), 90.0, 0.5);
  EXPECT_NEAR(bearing_deg(origin, offset(origin, 5.0, 180.0)), 180.0, 0.5);
}

TEST(Coords, FiberDelayMagnitude) {
  // ~5 us/km: 200 km => ~1 ms one way.
  EXPECT_NEAR(fiber_delay_us(200.0), 980.0, 30.0);
  EXPECT_LT(radio_delay_us(100.0), fiber_delay_us(100.0));
}

// ---------------------------------------------------------------- grid

class GridLabelRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(GridLabelRoundTrip, LabelParseInverse) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  const CellIndex c = grid.unflat(GetParam());
  const auto parsed = grid.parse_label(grid.label(c));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, c);
}

INSTANTIATE_TEST_SUITE_P(AllCells, GridLabelRoundTrip,
                         ::testing::Range(0, 42));

TEST(Grid, KnownLabels) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  EXPECT_EQ(grid.label(CellIndex{0, 0}), "A1");
  EXPECT_EQ(grid.label(CellIndex{2, 0}), "C1");
  EXPECT_EQ(grid.label(CellIndex{5, 6}), "F7");
  EXPECT_EQ(grid.parse_label("E3"), (CellIndex{4, 2}));
}

TEST(Grid, ParseRejectsMalformed) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  EXPECT_FALSE(grid.parse_label("").has_value());
  EXPECT_FALSE(grid.parse_label("Z1").has_value());
  EXPECT_FALSE(grid.parse_label("A0").has_value());
  EXPECT_FALSE(grid.parse_label("A8").has_value());
  EXPECT_FALSE(grid.parse_label("AX").has_value());
  EXPECT_FALSE(grid.parse_label("3A").has_value());
}

TEST(Grid, CellCenterLocateRoundTrip) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  for (const CellIndex c : grid.all_cells()) {
    const auto located = grid.locate(grid.cell_center(c));
    ASSERT_TRUE(located.has_value()) << grid.label(c);
    EXPECT_EQ(*located, c) << grid.label(c);
  }
}

TEST(Grid, LocateOutsideReturnsNullopt) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  EXPECT_FALSE(grid.locate(LatLon{48.2, 16.4}).has_value());  // Vienna
  EXPECT_FALSE(grid.locate(LatLon{46.99, 14.3}).has_value());  // north of it
}

TEST(Grid, CellGeometry) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  EXPECT_EQ(grid.rows(), 6);
  EXPECT_EQ(grid.cols(), 7);
  EXPECT_EQ(grid.cell_count(), 42);
  // Adjacent cell centres are one cell size apart.
  const double d = distance_km(grid.cell_center(CellIndex{2, 2}),
                               grid.cell_center(CellIndex{2, 3}));
  EXPECT_NEAR(d, grid.cell_size_km(), 0.02);
}

TEST(Grid, BorderClassification) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  EXPECT_TRUE(grid.is_border(CellIndex{0, 3}));
  EXPECT_TRUE(grid.is_border(CellIndex{5, 0}));
  EXPECT_TRUE(grid.is_border(CellIndex{2, 6}));
  EXPECT_FALSE(grid.is_border(CellIndex{2, 2}));
  int border = 0;
  for (const CellIndex c : grid.all_cells())
    if (grid.is_border(c)) ++border;
  EXPECT_EQ(border, 2 * 7 + 2 * 6 - 4);
}

TEST(Grid, FlatUnflatRoundTrip) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  for (int i = 0; i < grid.cell_count(); ++i)
    EXPECT_EQ(grid.flat(grid.unflat(i)), i);
}

// ---------------------------------------------------------------- population

TEST(Population, CityCoreIsDensest) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  const PopulationRaster pop = PopulationRaster::klagenfurt(grid);
  const double core = pop.density(CellIndex{3, 3});
  for (const CellIndex c : grid.all_cells()) {
    if (c == CellIndex{3, 3}) continue;
    EXPECT_LE(pop.density(c), core * 1.05) << grid.label(c);
  }
}

TEST(Population, CornersAreSparse) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  const PopulationRaster pop = PopulationRaster::klagenfurt(grid);
  EXPECT_TRUE(pop.sparse(CellIndex{0, 6}));  // A7
  EXPECT_TRUE(pop.sparse(CellIndex{5, 6}));  // F7
  EXPECT_FALSE(pop.sparse(CellIndex{3, 3}));  // D4 core
}

TEST(Population, WestCorridorSupportsC1) {
  // The paper's Fig. 2 reports a valid value at C1, so the cell must be
  // above the 1000 /km^2 under-sampling criterion.
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  const PopulationRaster pop = PopulationRaster::klagenfurt(grid);
  EXPECT_FALSE(pop.sparse(*grid.parse_label("C1")));
  EXPECT_FALSE(pop.sparse(*grid.parse_label("C2")));
}

TEST(Population, Deterministic) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  const PopulationRaster a = PopulationRaster::klagenfurt(grid);
  const PopulationRaster b = PopulationRaster::klagenfurt(grid);
  for (const CellIndex c : grid.all_cells())
    EXPECT_DOUBLE_EQ(a.density(c), b.density(c));
}

TEST(Population, TotalPopulationPlausible) {
  // Klagenfurt has ~100k inhabitants; a 42 km^2 urban sector should hold
  // a meaningful fraction of that.
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  const PopulationRaster pop = PopulationRaster::klagenfurt(grid);
  EXPECT_GT(pop.total_population(), 30000.0);
  EXPECT_LT(pop.total_population(), 200000.0);
}

TEST(Population, MultiCenterSumsContributions) {
  const SectorGrid grid = SectorGrid::klagenfurt_sector();
  PopulationRaster::Params one_center;
  one_center.centers = {{CellIndex{3, 3}, 4000.0, 0.6}};
  one_center.noise_sigma = 0.0;
  PopulationRaster::Params two_centers = one_center;
  two_centers.centers.push_back({CellIndex{2, 1}, 2000.0, 0.8});
  const PopulationRaster a{grid, one_center};
  const PopulationRaster b{grid, two_centers};
  for (const CellIndex c : grid.all_cells())
    EXPECT_GE(b.density(c) + 1e-9, a.density(c)) << grid.label(c);
}

// ---------------------------------------------------------------- gazetteer

TEST(Gazetteer, FindsPaperCities) {
  const auto& gaz = Gazetteer::central_europe();
  for (const char* name :
       {"Klagenfurt", "Vienna", "Prague", "Bucharest", "Graz", "Skopje"}) {
    EXPECT_TRUE(gaz.find(name).has_value()) << name;
  }
  EXPECT_FALSE(gaz.find("Atlantis").has_value());
}

TEST(Gazetteer, CountryCodes) {
  const auto& gaz = Gazetteer::central_europe();
  EXPECT_EQ(gaz.find("Klagenfurt")->country_code, "AT");
  EXPECT_EQ(gaz.find("Prague")->country_code, "CZ");
  EXPECT_EQ(gaz.find("Bucharest")->country_code, "RO");
  EXPECT_EQ(gaz.find("Skopje")->country_code, "MK");
}

}  // namespace
}  // namespace sixg::geo
