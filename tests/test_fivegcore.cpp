#include <gtest/gtest.h>

#include "fivegcore/placement.hpp"
#include "fivegcore/rules.hpp"
#include "fivegcore/selector.hpp"
#include "fivegcore/session.hpp"
#include "fivegcore/upf.hpp"
#include "stats/summary.hpp"
#include "topo/europe.hpp"

namespace sixg::core5g {
namespace {

// ---------------------------------------------------------------- RuleTable

TEST(RuleTable, LookupFindsInstalledRule) {
  RuleTable table{RuleTable::Mode::kLinearScan};
  (void)table.add_rule(PdrRule{1, 100, 1, 0, 0});
  (void)table.add_rule(PdrRule{2, 200, 1, 1, 0});
  const auto outcome = table.lookup(200);
  EXPECT_TRUE(outcome.matched);
  EXPECT_EQ(outcome.scanned, 2u);
}

TEST(RuleTable, LookupMissScansWholeTable) {
  RuleTable table{RuleTable::Mode::kLinearScan};
  for (std::uint32_t i = 0; i < 10; ++i)
    (void)table.add_rule(PdrRule{i, 100 + i, 1, int(i), 0});
  const auto outcome = table.lookup(9999);
  EXPECT_FALSE(outcome.matched);
  EXPECT_EQ(outcome.scanned, 10u);
}

TEST(RuleTable, PrecedenceOrdersMatching) {
  RuleTable table{RuleTable::Mode::kLinearScan};
  (void)table.add_rule(PdrRule{1, 100, 1, /*precedence=*/5, 0});
  (void)table.add_rule(PdrRule{2, 200, 1, /*precedence=*/1, 0});
  // Rule 2 has better precedence: scanned first.
  const auto outcome = table.lookup(200);
  EXPECT_EQ(outcome.scanned, 1u);
}

TEST(RuleTable, LinearLookupCostGrowsWithPosition) {
  RuleTable table{RuleTable::Mode::kLinearScan};
  for (std::uint32_t i = 0; i < 1000; ++i)
    (void)table.add_rule(PdrRule{i, 100 + i, 1, int(i), 0});
  const auto front = table.lookup(100);
  const auto back = table.lookup(100 + 999);
  EXPECT_GT(back.latency.ns(), 5 * front.latency.ns());
}

TEST(RuleTable, ContextAwareHitIsFlat) {
  RuleTable table{RuleTable::Mode::kContextAware, 16};
  for (std::uint32_t i = 0; i < 1000; ++i)
    (void)table.add_rule(PdrRule{i, 100 + i, i / 3, int(i), 0});
  table.prioritise_flow(100 + 999);
  const auto hot = table.lookup(100 + 999);
  EXPECT_TRUE(hot.matched);
  EXPECT_EQ(hot.scanned, 1u);
  // Flat cost: independent of the rule's position in a 1000-entry table.
  RuleTable small{RuleTable::Mode::kContextAware, 16};
  (void)small.add_rule(PdrRule{1, 42, 1, 0, 0});
  small.prioritise_flow(42);
  EXPECT_EQ(hot.latency.ns(), small.lookup(42).latency.ns());
}

TEST(RuleTable, ContextAwareMissPromotesFlow) {
  RuleTable table{RuleTable::Mode::kContextAware, 4};
  for (std::uint32_t i = 0; i < 100; ++i)
    (void)table.add_rule(PdrRule{i, 100 + i, 1, int(i), 0});
  const auto first = table.lookup(150);   // miss: full scan + promote
  const auto second = table.lookup(150);  // hot hit
  EXPECT_GT(first.latency.ns(), second.latency.ns());
  EXPECT_EQ(second.scanned, 1u);
}

TEST(RuleTable, HotCacheEvictsLru) {
  RuleTable table{RuleTable::Mode::kContextAware, 2};
  for (std::uint32_t i = 0; i < 3; ++i)
    (void)table.add_rule(PdrRule{i, 100 + i, 1, int(i), 0});
  table.prioritise_flow(100);
  table.prioritise_flow(101);
  table.prioritise_flow(102);  // evicts 100
  EXPECT_EQ(table.lookup(100).scanned, 1u);  // full scan finds it at pos 1
  // After the miss it is promoted again, so a second lookup is hot.
  EXPECT_EQ(table.lookup(100).latency.ns(),
            table.lookup(100).latency.ns());
}

TEST(RuleTable, MultipleFlowsPerUePrioritised) {
  RuleTable table{RuleTable::Mode::kContextAware, 8};
  // UE 7 has three concurrent flows (video, haptics, control).
  for (std::uint32_t i = 0; i < 3; ++i)
    (void)table.add_rule(PdrRule{i, 500 + i, /*ue=*/7, int(i), 0});
  (void)table.add_rule(PdrRule{10, 900, /*ue=*/8, 10, 0});
  for (std::uint32_t i = 0; i < 3; ++i) table.prioritise_flow(500 + i);
  table.prioritise_flow(900);
  EXPECT_EQ(table.prioritised_ue_count(), 2u);
}

TEST(RuleTable, UpdateRuleCheaperWhenPrioritised) {
  RuleTable linear{RuleTable::Mode::kLinearScan};
  RuleTable ctx{RuleTable::Mode::kContextAware, 8};
  for (std::uint32_t i = 0; i < 500; ++i) {
    (void)linear.add_rule(PdrRule{i, 100 + i, 1, int(i), 0});
    (void)ctx.add_rule(PdrRule{i, 100 + i, 1, int(i), 0});
  }
  ctx.prioritise_flow(100 + 250);
  const auto linear_cost = linear.update_rule(250, 9999);
  const auto ctx_cost = ctx.update_rule(250, 9999);
  ASSERT_TRUE(linear_cost && ctx_cost);
  EXPECT_GT(linear_cost->ns(), 3 * ctx_cost->ns());
}

TEST(RuleTable, RemoveRule) {
  RuleTable table{RuleTable::Mode::kLinearScan};
  (void)table.add_rule(PdrRule{1, 100, 1, 0, 0});
  EXPECT_TRUE(table.remove_rule(1).has_value());
  EXPECT_FALSE(table.remove_rule(1).has_value());
  EXPECT_FALSE(table.lookup(100).matched);
  EXPECT_EQ(table.size(), 0u);
}

TEST(RuleTable, HitsAccounting) {
  RuleTable table{RuleTable::Mode::kLinearScan};
  (void)table.add_rule(PdrRule{1, 100, 1, 0, 0});
  (void)table.lookup(100);
  (void)table.lookup(100);
  (void)table.lookup(200);  // miss
  // Hits are internal, but lookups must stay consistent.
  EXPECT_TRUE(table.lookup(100).matched);
}

// ---------------------------------------------------------------- Upf

TEST(Upf, SmartNicFactorsMatchJainEtAl) {
  Upf host{Upf::Config{.name = "host"}};
  Upf nic{Upf::Config{.name = "nic", .datapath = UpfDatapath::kSmartNic}};
  EXPECT_DOUBLE_EQ(
      host.mean_pipeline_latency().us() / nic.mean_pipeline_latency().us(),
      3.75);
  EXPECT_DOUBLE_EQ(nic.max_throughput_mpps() / host.max_throughput_mpps(),
                   2.0);
}

TEST(Upf, PacketLatencySampling) {
  Upf upf{Upf::Config{}};
  (void)upf.rules().add_rule(PdrRule{1, 42, 1, 0, 0});
  Rng rng{4};
  stats::Summary s;
  for (int i = 0; i < 50000; ++i)
    s.add(upf.sample_packet_latency(42, rng).us());
  // Mean pipeline ~9 us (lognormal mean slightly above the median) plus
  // lookup and queueing.
  EXPECT_GT(s.mean(), 8.0);
  EXPECT_LT(s.mean(), 20.0);
}

TEST(Upf, LoadRaisesLatency) {
  Upf idle{Upf::Config{.offered_load = 0.05}};
  Upf busy{Upf::Config{.offered_load = 0.95}};
  (void)idle.rules().add_rule(PdrRule{1, 42, 1, 0, 0});
  (void)busy.rules().add_rule(PdrRule{1, 42, 1, 0, 0});
  Rng rng_a{5};
  Rng rng_b{5};
  stats::Summary a;
  stats::Summary b;
  for (int i = 0; i < 30000; ++i) {
    a.add(idle.sample_packet_latency(42, rng_a).us());
    b.add(busy.sample_packet_latency(42, rng_b).us());
  }
  EXPECT_GT(b.mean(), a.mean());
}

TEST(Upf, SetOfferedLoadValidated) {
  Upf upf{Upf::Config{}};
  upf.set_offered_load(0.5);
  EXPECT_DOUBLE_EQ(upf.config().offered_load, 0.5);
}

// ---------------------------------------------------------------- placement

class PlacementFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo::EuropeOptions options;
    options.local_breakout = true;
    world_ = new topo::EuropeTopology(topo::build_europe(options));
    UpfPlacementStudy::Config config;
    config.samples = 1500;
    study_ = new UpfPlacementStudy(*world_, config);
    rows_ = new std::vector<PlacementResult>(study_->sweep());
  }
  static void TearDownTestSuite() {
    delete rows_;
    delete study_;
    delete world_;
    rows_ = nullptr;
    study_ = nullptr;
    world_ = nullptr;
  }
  static const PlacementResult& row(UpfPlacement p, const std::string& acc) {
    for (const auto& r : *rows_)
      if (r.placement == p && r.access_profile == acc) return r;
    ADD_FAILURE() << "row not found";
    return rows_->front();
  }
  static topo::EuropeTopology* world_;
  static UpfPlacementStudy* study_;
  static std::vector<PlacementResult>* rows_;
};

topo::EuropeTopology* PlacementFixture::world_ = nullptr;
UpfPlacementStudy* PlacementFixture::study_ = nullptr;
std::vector<PlacementResult>* PlacementFixture::rows_ = nullptr;

TEST_F(PlacementFixture, BaselineExceeds62Ms) {
  EXPECT_GT(row(UpfPlacement::kNone, "5G-NSA").mean_rtt_ms, 55.0);
}

TEST_F(PlacementFixture, CloserAnchorsAreFaster) {
  for (const std::string acc : {"5G-NSA", "5G-SA-URLLC", "6G"}) {
    EXPECT_GT(row(UpfPlacement::kCloud, acc).mean_rtt_ms,
              row(UpfPlacement::kMetro, acc).mean_rtt_ms)
        << acc;
    EXPECT_GT(row(UpfPlacement::kMetro, acc).mean_rtt_ms,
              row(UpfPlacement::kEdge, acc).mean_rtt_ms)
        << acc;
  }
}

TEST_F(PlacementFixture, EdgeWithCapable5GHitsPaperBand) {
  // Barrachina/Goshi: 5-6.2 ms. Our edge..metro bracket spans that band.
  const double edge = row(UpfPlacement::kEdge, "5G-SA-URLLC").mean_rtt_ms;
  const double metro = row(UpfPlacement::kMetro, "5G-SA-URLLC").mean_rtt_ms;
  EXPECT_LT(edge, 6.2);
  EXPECT_GT(metro, 5.0);
}

TEST_F(PlacementFixture, ReductionReaches90Percent) {
  const double baseline = row(UpfPlacement::kNone, "5G-NSA").mean_rtt_ms;
  const double edge_sa = row(UpfPlacement::kEdge, "5G-SA-URLLC").mean_rtt_ms;
  EXPECT_GT(1.0 - edge_sa / baseline, 0.88);
}

TEST_F(PlacementFixture, SixGEdgeApproachesSubMillisecond) {
  EXPECT_LT(row(UpfPlacement::kEdge, "6G").mean_rtt_ms, 2.0);
}

// ---------------------------------------------------------------- session

TEST(SessionSetup, ConvergedEdgeIsFasterAndLeaner) {
  const SessionSetupModel model{ControlPlaneSites{}};
  Rng rng{6};
  stats::Summary conv;
  stats::Summary edge;
  std::uint32_t conv_msgs = 0;
  std::uint32_t edge_msgs = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto c = model.conventional(rng);
    const auto e = model.converged_edge(rng);
    conv.add(c.total.ms());
    edge.add(e.total.ms());
    conv_msgs = c.messages;
    edge_msgs = e.messages;
  }
  EXPECT_GT(conv.mean(), 1.5 * edge.mean());
  EXPECT_GT(conv_msgs, edge_msgs);
}

TEST(SessionSetup, BreakdownSumsToTotal) {
  const SessionSetupModel model{ControlPlaneSites{}};
  Rng rng{7};
  const auto b = model.conventional(rng);
  const Duration sum = b.transport + b.processing + b.overhead;
  EXPECT_EQ(sum.ns(), b.total.ns());
  EXPECT_EQ(b.messages, 17u);
}

TEST(SessionSetup, SbiOverheadOnlyOnServiceInterfaces) {
  ControlPlaneSites sites;
  sites.sbi_overhead = Duration::from_millis_f(50.0);  // exaggerate
  const SessionSetupModel model{sites};
  Rng rng{8};
  const auto conv = model.conventional(rng);
  const auto edge = model.converged_edge(rng);
  EXPECT_GT(conv.overhead.ms(), 100.0);  // 5 SBI messages
  EXPECT_DOUBLE_EQ(edge.overhead.ms(), 0.0);  // binary edge interfaces
}

// ---------------------------------------------------------------- selector

TEST(Selector, CriticalFlowsGoToEdgeUntilFull) {
  DynamicUpfSelector selector{DynamicUpfSelector::Config{
      .edge_capacity_units = 2.0, .metro_capacity_units = 100.0}};
  std::vector<FlowRequest> flows;
  for (std::uint64_t i = 0; i < 5; ++i)
    flows.push_back(FlowRequest{i, FlowClass::kLatencyCritical, 1.0});
  const auto assignments = selector.assign(flows);
  EXPECT_EQ(assignments[0].anchor, UpfPlacement::kEdge);
  EXPECT_EQ(assignments[1].anchor, UpfPlacement::kEdge);
  // Edge full: graceful degradation to metro, never cloud for critical.
  EXPECT_EQ(assignments[2].anchor, UpfPlacement::kMetro);
  EXPECT_EQ(assignments[4].anchor, UpfPlacement::kMetro);
}

TEST(Selector, BulkStaysInCloud) {
  DynamicUpfSelector selector{DynamicUpfSelector::Config{}};
  const auto assignments = selector.assign(
      {FlowRequest{1, FlowClass::kBulk, 1.0}});
  EXPECT_EQ(assignments[0].anchor, UpfPlacement::kCloud);
}

TEST(Selector, CloudOnlyPolicyDisablesEdge) {
  DynamicUpfSelector selector{
      DynamicUpfSelector::Config{.cloud_only = true}};
  const auto assignments = selector.assign(
      {FlowRequest{1, FlowClass::kLatencyCritical, 1.0}});
  EXPECT_EQ(assignments[0].anchor, UpfPlacement::kCloud);
}

TEST(Selector, SynthesizedMixMatchesShares) {
  Rng rng{9};
  const auto flows = synthesize_flows(10000, 0.2, 0.3, rng);
  int critical = 0;
  int interactive = 0;
  for (const auto& f : flows) {
    if (f.flow_class == FlowClass::kLatencyCritical) ++critical;
    if (f.flow_class == FlowClass::kInteractive) ++interactive;
  }
  EXPECT_NEAR(critical / 10000.0, 0.2, 0.02);
  EXPECT_NEAR(interactive / 10000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace sixg::core5g
