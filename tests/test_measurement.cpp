#include <gtest/gtest.h>

#include "geo/grid.hpp"
#include "geo/population.hpp"
#include "measurement/grid_campaign.hpp"
#include "measurement/ping.hpp"
#include "netsim/parallel.hpp"
#include "radio/conditions.hpp"
#include "radio/profile.hpp"
#include "topo/europe.hpp"

namespace sixg::meas {
namespace {

class MeasurementFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    grid_ = new geo::SectorGrid(geo::SectorGrid::klagenfurt_sector());
    pop_ = new geo::PopulationRaster(geo::PopulationRaster::klagenfurt(*grid_));
    rem_ = new radio::RadioEnvironmentMap(
        radio::RadioEnvironmentMap::klagenfurt(*grid_, *pop_));
    world_ = new topo::EuropeTopology(topo::build_europe());
  }
  static void TearDownTestSuite() {
    delete world_;
    delete rem_;
    delete pop_;
    delete grid_;
    world_ = nullptr;
    rem_ = nullptr;
    pop_ = nullptr;
    grid_ = nullptr;
  }

  static GridCampaign::Config small_config() {
    GridCampaign::Config config;
    config.mobile_nodes = 2;
    config.drive.total_duration = Duration::seconds(3600);
    return config;
  }

  static GridCampaign make_campaign(const GridCampaign::Config& config) {
    return GridCampaign{*grid_,
                        *pop_,
                        *rem_,
                        world_->net,
                        world_->mobile_ue,
                        world_->university_probe,
                        radio::AccessProfile::fiveg_nsa(),
                        config};
  }

  static geo::SectorGrid* grid_;
  static geo::PopulationRaster* pop_;
  static radio::RadioEnvironmentMap* rem_;
  static topo::EuropeTopology* world_;
};

geo::SectorGrid* MeasurementFixture::grid_ = nullptr;
geo::PopulationRaster* MeasurementFixture::pop_ = nullptr;
radio::RadioEnvironmentMap* MeasurementFixture::rem_ = nullptr;
topo::EuropeTopology* MeasurementFixture::world_ = nullptr;

// ---------------------------------------------------------------- ping

TEST_F(MeasurementFixture, WiredPingReachableAndPositive) {
  const PingMeasurement ping{world_->net, world_->wired_host,
                             world_->university_probe};
  ASSERT_TRUE(ping.reachable());
  Rng rng{1};
  const auto result = ping.run(200, rng);
  EXPECT_EQ(result.summary_ms.count(), 200u);
  EXPECT_GT(result.summary_ms.min(), 0.0);
  // Never below the deterministic path floor.
  const double floor_ms = 2.0 * ping.path().base_one_way.ms();
  EXPECT_GE(result.summary_ms.min(), floor_ms - 1e-9);
}

TEST_F(MeasurementFixture, MobilePingAddsRadioLatency) {
  const radio::RadioLinkModel nsa{radio::AccessProfile::fiveg_nsa()};
  const auto conditions = rem_->at(*grid_->parse_label("C2"));
  const PingMeasurement wired{world_->net, world_->mobile_ue,
                              world_->university_probe};
  const PingMeasurement mobile{world_->net, world_->mobile_ue,
                               world_->university_probe, nsa, conditions};
  Rng rng_a{2};
  Rng rng_b{2};
  const auto w = wired.run(300, rng_a);
  const auto m = mobile.run(300, rng_b);
  EXPECT_GT(m.summary_ms.mean(), w.summary_ms.mean() + 10.0);
}

TEST_F(MeasurementFixture, PingDeterministicPerSeed) {
  const PingMeasurement ping{world_->net, world_->wired_host,
                             world_->university_probe};
  Rng a{3};
  Rng b{3};
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(ping.sample_ms(a), ping.sample_ms(b));
}

// ---------------------------------------------------------------- campaign

TEST_F(MeasurementFixture, CampaignParallelEqualsSerial) {
  const auto campaign = make_campaign(small_config());
  const netsim::ParallelRunner serial{1};
  const netsim::ParallelRunner parallel{4};
  const GridReport a = campaign.run(serial);
  const GridReport b = campaign.run(parallel);
  for (const auto cell : grid_->all_cells()) {
    EXPECT_EQ(a.at(cell).sample_count, b.at(cell).sample_count);
    EXPECT_DOUBLE_EQ(a.at(cell).rtt_ms.mean(), b.at(cell).rtt_ms.mean());
    EXPECT_DOUBLE_EQ(a.at(cell).rtt_ms.stddev(), b.at(cell).rtt_ms.stddev());
  }
}

TEST_F(MeasurementFixture, CampaignDeterministicPerSeed) {
  const auto campaign = make_campaign(small_config());
  const netsim::ParallelRunner runner;
  const GridReport a = campaign.run(runner);
  const GridReport b = campaign.run(runner);
  EXPECT_EQ(a.traversed_count(), b.traversed_count());
  for (const auto cell : grid_->all_cells())
    EXPECT_DOUBLE_EQ(a.at(cell).rtt_ms.mean(), b.at(cell).rtt_ms.mean());
}

TEST_F(MeasurementFixture, DifferentSeedsChangeTheDrive) {
  GridCampaign::Config a_config = small_config();
  GridCampaign::Config b_config = small_config();
  b_config.seed = a_config.seed + 1;
  const netsim::ParallelRunner runner;
  const GridReport a = make_campaign(a_config).run(runner);
  const GridReport b = make_campaign(b_config).run(runner);
  bool differs = false;
  for (const auto cell : grid_->all_cells())
    differs = differs || a.at(cell).sample_count != b.at(cell).sample_count;
  EXPECT_TRUE(differs);
}

TEST_F(MeasurementFixture, SuppressionRuleHonoursMinSamples) {
  GridCampaign::Config config = small_config();
  config.min_samples = 10;
  const netsim::ParallelRunner runner;
  const GridReport report = make_campaign(config).run(runner);
  for (const auto cell : grid_->all_cells()) {
    const auto& r = report.at(cell);
    if (!r.traversed) {
      EXPECT_FALSE(report.reports(cell));
    } else if (r.sample_count < 10) {
      EXPECT_FALSE(report.reports(cell));
    } else {
      EXPECT_TRUE(report.reports(cell));
    }
  }
}

TEST_F(MeasurementFixture, ReportTablesHaveGridShape) {
  const netsim::ParallelRunner runner;
  const GridReport report = make_campaign(small_config()).run(runner);
  EXPECT_EQ(report.mean_table().row_count(), std::size_t(grid_->rows()));
  EXPECT_EQ(report.stddev_table().row_count(), std::size_t(grid_->rows()));
  EXPECT_EQ(report.count_table().row_count(), std::size_t(grid_->rows()));
}

TEST_F(MeasurementFixture, ExtremesComeFromReportingCells) {
  const netsim::ParallelRunner runner;
  const GridReport report = make_campaign(small_config()).run(runner);
  const auto min_mean = report.min_mean();
  const auto max_mean = report.max_mean();
  ASSERT_FALSE(min_mean.label.empty());
  ASSERT_FALSE(max_mean.label.empty());
  EXPECT_LE(min_mean.value, max_mean.value);
  const auto min_cell = grid_->parse_label(min_mean.label);
  ASSERT_TRUE(min_cell.has_value());
  EXPECT_TRUE(report.reports(*min_cell));
}

TEST_F(MeasurementFixture, SampleCountsScaleWithCadence) {
  GridCampaign::Config slow = small_config();
  slow.measurement_interval = Duration::seconds(30);
  GridCampaign::Config fast = small_config();
  fast.measurement_interval = Duration::seconds(5);
  const netsim::ParallelRunner runner;
  const GridReport a = make_campaign(slow).run(runner);
  const GridReport b = make_campaign(fast).run(runner);
  std::uint64_t slow_total = 0;
  std::uint64_t fast_total = 0;
  for (const auto cell : grid_->all_cells()) {
    slow_total += a.at(cell).sample_count;
    fast_total += b.at(cell).sample_count;
  }
  EXPECT_GT(fast_total, 4 * slow_total);
}

TEST_F(MeasurementFixture, PlansMatchConfiguredNodeCount) {
  GridCampaign::Config config = small_config();
  config.mobile_nodes = 3;
  const auto plans = make_campaign(config).plans();
  EXPECT_EQ(plans.size(), 3u);
}

}  // namespace
}  // namespace sixg::meas
