/// Determinism and causality harness for the sharded kernel. Three
/// layers, mirroring the contract in netsim/sharded.hpp:
///   1. kernel: a 1-shard ShardedSimulator replays a plain Simulator
///      timeline event for event, and an N-shard message storm is
///      byte-identical at any worker count;
///   2. causality: randomized cross-shard latencies and window sizes —
///      no event may execute before the conservative lower bound of the
///      window it was posted from (source barrier clock + window);
///   3. fleet: a 1-shard ShardedFleetStudy digests identically to the
///      serial FleetStudy across seeds and {networked, local} fleets,
///      and an N-pod run digests identically at worker counts 1/2/4/8.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "edgeai/fleet.hpp"
#include "netsim/sharded.hpp"
#include "netsim/simulator.hpp"
#include "stats/distributions.hpp"

namespace sixg {
namespace {

using netsim::ShardedSimulator;
using netsim::Simulator;

// ------------------------------------------------------------- kernel

/// A seeded event cascade on one timeline: log (time, draw), then
/// reschedule after a drawn delay until `remaining` hops are spent.
struct CascadeEvent {
  Simulator* sim;
  std::vector<std::pair<std::int64_t, std::uint64_t>>* log;
  Rng* rng;
  std::uint32_t remaining;
  void operator()() const {
    const std::uint64_t draw = (*rng)();
    log->emplace_back(sim->now().ns(), draw);
    if (remaining == 0) return;
    sim->schedule_after(Duration::micros(std::int64_t(draw % 500) + 1),
                        CascadeEvent{sim, log, rng, remaining - 1});
  }
};

TEST(ShardedSimulator, OneShardReplaysThePlainSimulatorTimeline) {
  // Schedule identical cascades on a timeline, then drain it — the
  // plain simulator with run(), the sharded kernel through its windowed
  // driver. Windowed stepping must not change a single (time, draw).
  const auto run_cascades = [](Simulator& sim, auto&& drain) {
    std::vector<std::pair<std::int64_t, std::uint64_t>> log;
    Rng rng{derive_seed(7, 0xcafe)};
    for (int c = 0; c < 4; ++c) {
      sim.schedule_at(TimePoint{} + Duration::micros(10 * (c + 1)),
                      CascadeEvent{&sim, &log, &rng, 40});
    }
    drain();
    return log;
  };
  Simulator plain{netsim::shard_seed(7, 0)};
  const auto reference = run_cascades(plain, [&] { plain.run(); });

  ShardedSimulator::Config config;
  config.shards = 1;
  config.window = Duration::micros(37);  // windows never change the order
  config.seed = 7;
  ShardedSimulator sharded{config};
  const auto windowed =
      run_cascades(sharded.shard(0), [&] { sharded.run(); });
  EXPECT_EQ(reference, windowed);
  EXPECT_GT(sharded.windows(), 1u);
  EXPECT_EQ(sharded.messages(), 0u);
}

TEST(ShardedSimulator, RunUntilLandsOnTheHorizonAndKeepsLateEvents) {
  ShardedSimulator::Config config;
  config.shards = 2;
  config.window = Duration::millis(1);
  ShardedSimulator sharded{config};
  int fired = 0;
  sharded.shard(1).schedule_at(TimePoint{} + Duration::millis(10),
                               [&fired] { ++fired; });
  sharded.run_until(TimePoint{} + Duration::from_millis_f(3.5));
  EXPECT_EQ(sharded.now().ns(), Duration::from_millis_f(3.5).ns());
  EXPECT_EQ(fired, 0);
  sharded.run();
  EXPECT_EQ(fired, 1);
}

/// Shared state of the cross-shard message storm. Each shard owns its
/// RNG and its log; events hop shards through post() with a latency of
/// at least one window (the conservative contract), or reschedule
/// locally. `violations` counts events that executed before the
/// conservative lower bound of their source window — it must stay 0.
struct Storm {
  ShardedSimulator* kernel = nullptr;
  Duration window;
  std::vector<std::vector<std::pair<std::int64_t, std::uint64_t>>> logs;
  std::vector<Rng> rngs;
  std::atomic<std::uint64_t> violations{0};
};

struct StormEvent {
  Storm* storm;
  std::uint32_t shard;
  std::uint32_t hops;
  std::int64_t not_before;  ///< conservative lower bound when posted
  std::uint64_t tag;
  void operator()() const {
    Storm& s = *storm;
    Simulator& sim = s.kernel->shard(shard);
    if (sim.now().ns() < not_before) {
      s.violations.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t draw = s.rngs[shard]();
    s.logs[shard].emplace_back(sim.now().ns(), tag ^ draw);
    if (hops == 0) return;
    const Duration extra = Duration::micros(std::int64_t(draw % 700));
    const std::uint32_t shards = s.kernel->shard_count();
    if (shards > 1 && (draw & 1) != 0) {
      std::uint32_t dst = std::uint32_t((draw >> 8) % (shards - 1));
      if (dst >= shard) ++dst;
      // Source window lower bound: barrier clock + one window. Latency
      // >= window keeps the message conservative; `extra` randomizes it.
      const TimePoint bound = s.kernel->now() + s.window;
      const TimePoint at = sim.now() + s.window + extra;
      s.kernel->post(shard, dst, at,
                     StormEvent{storm, dst, hops - 1, bound.ns(),
                                tag * 31 + dst});
    } else {
      sim.schedule_after(extra,
                         StormEvent{storm, shard, hops - 1,
                                    sim.now().ns(), tag * 31 + shard});
    }
  }
};
static_assert(sizeof(StormEvent) <= netsim::InplaceAction::kInlineBytes);

/// Run one storm configuration and return the full per-shard logs.
std::vector<std::vector<std::pair<std::int64_t, std::uint64_t>>> run_storm(
    std::uint32_t shards, Duration window, unsigned workers,
    std::uint64_t seed) {
  ShardedSimulator::Config config;
  config.shards = shards;
  config.window = window;
  config.seed = seed;
  config.workers = workers;
  ShardedSimulator kernel{config};
  Storm storm;
  storm.kernel = &kernel;
  storm.window = window;
  storm.logs.resize(shards);
  for (std::uint32_t k = 0; k < shards; ++k) {
    storm.rngs.emplace_back(derive_seed(seed, 0x570 + k));
    for (int c = 0; c < 3; ++c) {
      kernel.shard(k).schedule_at(
          TimePoint{} + Duration::micros(5 * (c + 1)),
          StormEvent{&storm, k, 60, 0, seed ^ (k * 97u + std::uint64_t(c))});
    }
  }
  kernel.run();
  EXPECT_EQ(storm.violations.load(), 0u)
      << "events executed before their source window's conservative bound";
  EXPECT_GT(kernel.messages(), 0u);
  return storm.logs;
}

TEST(ShardedSimulator, StormIsByteIdenticalAcrossWorkerCounts) {
  const auto reference = run_storm(4, Duration::micros(800), 1, 11);
  for (const unsigned workers : {2u, 4u, 8u}) {
    EXPECT_EQ(reference, run_storm(4, Duration::micros(800), workers, 11))
        << "workers " << workers;
  }
}

TEST(ShardedSimulator, CausalityHoldsUnderRandomizedWindowsAndLatencies) {
  // Randomized shard counts, window sizes and (via the storm's draws)
  // cross-shard latencies; repeated so sanitizer jobs get scheduling
  // variety. run_storm itself asserts the causality bound; here we also
  // pin worker-count invariance per configuration.
  Rng shape{0xca05a117};
  for (int iteration = 0; iteration < 6; ++iteration) {
    const std::uint32_t shards = 2 + std::uint32_t(shape.uniform_int(4));
    const Duration window =
        Duration::micros(200 + std::int64_t(shape.uniform_int(1800)));
    const std::uint64_t seed = shape();
    const auto serial = run_storm(shards, window, 1, seed);
    const auto wide = run_storm(shards, window, 4, seed);
    EXPECT_EQ(serial, wide) << "iteration " << iteration;
  }
}

TEST(ShardedSimulator, ShardSeedsAreStableAndAnchorShardZero) {
  EXPECT_EQ(netsim::shard_seed(123, 0), 123u);  // the equivalence anchor
  EXPECT_NE(netsim::shard_seed(123, 1), netsim::shard_seed(123, 2));
  EXPECT_NE(netsim::shard_seed(123, 1), netsim::shard_seed(124, 1));
}

// -------------------------------------------------------------- fleet

edgeai::FleetStudy::DelaySampler synthetic_hop(double shift_s, double mean_s) {
  const stats::ShiftedExponential hop{shift_s, mean_s};
  return [hop](Rng& rng) { return Duration::from_seconds_f(hop.sample(rng)); };
}

edgeai::FleetStudy::ServerSpec edge_spec(bool networked) {
  edgeai::FleetStudy::ServerSpec spec;
  spec.accelerator = edgeai::AcceleratorProfile::edge_gpu();
  spec.batching.max_batch = 8;
  spec.batching.batch_window = Duration::from_millis_f(1.0);
  spec.batching.queue_capacity = 64;
  spec.tier = edgeai::ExecutionTier::kEdge;
  if (networked) {
    spec.uplink = synthetic_hop(0.3e-3, 0.5e-3);
    spec.downlink = synthetic_hop(0.3e-3, 0.5e-3);
  }
  return spec;
}

edgeai::FleetStudy::Config pod_config(bool networked, std::uint64_t seed) {
  edgeai::FleetStudy::Config config;
  config.model = edgeai::ModelZoo::at("det-base");
  config.policy = edgeai::DispatchPolicy::kJoinShortestQueue;
  config.arrivals_per_second = 6000.0;
  config.requests = 10000;
  config.slo = Duration::from_millis_f(20.0);
  config.energy.uplink = DataRate::gbps(2);
  config.energy.downlink = DataRate::gbps(4);
  config.seed = seed;
  for (int i = 0; i < 3; ++i) config.servers.push_back(edge_spec(networked));
  return config;
}

TEST(ShardedFleet, OneShardDigestsIdenticalToSerialFleetStudy) {
  for (const bool networked : {true, false}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto config = pod_config(networked, seed);
      const auto serial = edgeai::FleetStudy::run(config);
      edgeai::ShardedFleetStudy::Config sharded;
      sharded.shard = config;
      sharded.shards = 1;
      sharded.window = Duration::millis(1);
      sharded.remote_fraction = 0.25;  // inert with one shard
      const auto windowed = edgeai::ShardedFleetStudy::run(sharded);
      EXPECT_EQ(edgeai::fleet_report_digest(serial),
                edgeai::fleet_report_digest(windowed))
          << "seed " << seed << (networked ? " networked" : " local");
      EXPECT_EQ(windowed.remote_requests, 0u);
    }
  }
}

edgeai::ShardedFleetStudy::Config city_config(std::uint64_t seed,
                                              unsigned workers) {
  edgeai::ShardedFleetStudy::Config config;
  config.shard = pod_config(true, seed);
  config.shard.requests = 8000;
  config.shards = 4;
  config.workers = workers;
  config.window = Duration::from_millis_f(1.5);
  config.remote_fraction = 0.25;
  // Inter-pod legs: 1.5 ms floor == the window (the tightest legal
  // sizing), exponential tail on top.
  config.remote_uplink = synthetic_hop(1.5e-3, 0.4e-3);
  config.remote_downlink = synthetic_hop(1.5e-3, 0.4e-3);
  return config;
}

TEST(ShardedFleet, MultiPodDigestsIdenticalAcrossWorkerCounts) {
  const auto reference = edgeai::ShardedFleetStudy::run(city_config(21, 1));
  const std::uint64_t want = edgeai::fleet_report_digest(reference);
  // Remote traffic must actually flow, and every request must resolve.
  EXPECT_GT(reference.remote_requests, 0u);
  EXPECT_GT(reference.mailbox_messages, 0u);
  EXPECT_EQ(reference.completed + reference.dropped, 4u * 8000u);
  EXPECT_EQ(reference.servers.size(), 12u);
  EXPECT_EQ(reference.servers[3].name.substr(0, 5), "pod1/");
  for (const unsigned workers : {2u, 4u, 8u}) {
    const auto report = edgeai::ShardedFleetStudy::run(city_config(21, workers));
    EXPECT_EQ(edgeai::fleet_report_digest(report), want)
        << "workers " << workers;
    EXPECT_EQ(report.remote_requests, reference.remote_requests);
    EXPECT_EQ(report.mailbox_messages, reference.mailbox_messages);
  }
}

TEST(ShardedFleet, DistinctSeedsAndShardCountsDiverge) {
  const auto a = edgeai::ShardedFleetStudy::run(city_config(5, 2));
  auto reseeded_config = city_config(6, 2);
  const auto b = edgeai::ShardedFleetStudy::run(reseeded_config);
  EXPECT_NE(edgeai::fleet_report_digest(a), edgeai::fleet_report_digest(b));
  auto fewer_pods = city_config(5, 2);
  fewer_pods.shards = 2;
  const auto c = edgeai::ShardedFleetStudy::run(fewer_pods);
  EXPECT_NE(edgeai::fleet_report_digest(a), edgeai::fleet_report_digest(c));
}

}  // namespace
}  // namespace sixg
