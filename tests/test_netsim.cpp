#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "netsim/parallel.hpp"
#include "netsim/simulator.hpp"

namespace sixg::netsim {
namespace {

using namespace sixg::literals;

// ---------------------------------------------------------------- Simulator

TEST(Simulator, ProcessesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(3_ms, [&] { order.push_back(3); });
  sim.schedule_after(1_ms, [&] { order.push_back(1); });
  sim.schedule_after(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.processed_events(), 3u);
}

TEST(Simulator, EqualTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_after(1_ms, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(7_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.ns(), (7_ms).ns());
  EXPECT_EQ(sim.now().ns(), (7_ms).ns());
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] {
    ++fired;
    sim.schedule_after(1_ms, [&] {
      ++fired;
      sim.schedule_after(1_ms, [&] { ++fired; });
    });
  });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now().ns(), (3_ms).ns());
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(2_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] { ++fired; });
  sim.schedule_after(5_ms, [&] { ++fired; });
  sim.run_until(TimePoint{} + 3_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), (3_ms).ns());  // clock lands on the horizon
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_periodic(10_ms, [&] { ++fired; });
  sim.run_until(TimePoint{} + 55_ms);
  EXPECT_EQ(fired, 5);
  EXPECT_TRUE(handle.active());
}

TEST(Simulator, PeriodicCancelStopsFiring) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_periodic(10_ms, [&] { ++fired; });
  sim.schedule_after(25_ms, [&] { handle.cancel(); });
  sim.run_until(TimePoint{} + 100_ms);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(handle.active());
}

TEST(Simulator, PeriodicSelfCancelFromAction) {
  Simulator sim;
  int fired = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(5_ms, [&] {
    if (++fired == 3) handle.cancel();
  });
  sim.run_until(TimePoint{} + 200_ms);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RngIsDeterministicPerSeed) {
  Simulator a{99};
  Simulator b{99};
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.rng()(), b.rng()());
}

// ------------------------------------------------------------ ParallelRunner

TEST(ParallelRunner, RunsEveryJobExactlyOnce) {
  const ParallelRunner runner{4};
  std::vector<std::atomic<int>> hits(257);
  runner.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, ZeroJobsIsNoop) {
  const ParallelRunner runner{4};
  bool called = false;
  runner.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRunner, MapPreservesIndexOrder) {
  const ParallelRunner runner{4};
  const auto squares = runner.map<int>(
      100, [](std::size_t i) { return int(i * i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(squares[std::size_t(i)], i * i);
}

TEST(ParallelRunner, SingleThreadFallback) {
  const ParallelRunner runner{1};
  EXPECT_EQ(runner.thread_count(), 1u);
  std::vector<int> order;
  runner.run(10, [&](std::size_t i) { order.push_back(int(i)); });
  // Single-threaded execution is strictly sequential.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(ParallelRunner, DefaultsToHardwareConcurrency) {
  const ParallelRunner runner;
  EXPECT_GE(runner.thread_count(), 1u);
}

TEST(ParallelRunner, ParallelEqualsSerialForSeededSimulations) {
  // The core determinism contract: simulations seeded via derive_seed
  // produce identical results regardless of the worker count.
  const auto simulate = [](std::size_t i) {
    Simulator sim{derive_seed(42, i)};
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) acc += sim.rng().uniform();
    return acc;
  };
  const ParallelRunner serial{1};
  const ParallelRunner parallel{4};
  const auto a = serial.map<double>(64, simulate);
  const auto b = parallel.map<double>(64, simulate);
  EXPECT_EQ(a, b);
}

TEST(ParallelRunner, MoreJobsThanThreads) {
  const ParallelRunner runner{3};
  std::atomic<std::int64_t> sum{0};
  runner.run(1000, [&](std::size_t i) {
    sum.fetch_add(std::int64_t(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

}  // namespace
}  // namespace sixg::netsim
