#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "netsim/parallel.hpp"
#include "netsim/simulator.hpp"

namespace sixg::netsim {
namespace {

using namespace sixg::literals;

// ---------------------------------------------------------------- Simulator

TEST(Simulator, ProcessesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(3_ms, [&] { order.push_back(3); });
  sim.schedule_after(1_ms, [&] { order.push_back(1); });
  sim.schedule_after(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.processed_events(), 3u);
}

TEST(Simulator, EqualTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_after(1_ms, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(7_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.ns(), (7_ms).ns());
  EXPECT_EQ(sim.now().ns(), (7_ms).ns());
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] {
    ++fired;
    sim.schedule_after(1_ms, [&] {
      ++fired;
      sim.schedule_after(1_ms, [&] { ++fired; });
    });
  });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now().ns(), (3_ms).ns());
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(2_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] { ++fired; });
  sim.schedule_after(5_ms, [&] { ++fired; });
  sim.run_until(TimePoint{} + 3_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), (3_ms).ns());  // clock lands on the horizon
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_periodic(10_ms, [&] { ++fired; });
  sim.run_until(TimePoint{} + 55_ms);
  EXPECT_EQ(fired, 5);
  EXPECT_TRUE(handle.active());
}

TEST(Simulator, PeriodicCancelStopsFiring) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_periodic(10_ms, [&] { ++fired; });
  sim.schedule_after(25_ms, [&] { handle.cancel(); });
  sim.run_until(TimePoint{} + 100_ms);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(handle.active());
}

TEST(Simulator, PeriodicSelfCancelFromAction) {
  Simulator sim;
  int fired = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(5_ms, [&] {
    if (++fired == 3) handle.cancel();
  });
  sim.run_until(TimePoint{} + 200_ms);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RngIsDeterministicPerSeed) {
  Simulator a{99};
  Simulator b{99};
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.rng()(), b.rng()());
}

// ------------------------------------------------- kernel edge cases

TEST(Simulator, EqualTimeFifoOrderAtTenThousandEvents) {
  // 10k events at the same instant must run in exact scheduling order —
  // the determinism contract's tie-break at depth. (Same-time keys all
  // stay in the near heap; the heap/calendar boundary tie is covered by
  // EqualTimeFifoOrderAcrossHeapAndCalendar below.)
  Simulator sim;
  std::vector<int> order;
  order.reserve(10000);
  for (int i = 0; i < 10000; ++i)
    sim.schedule_after(5_ms, [&order, i] { order.push_back(i); });
  sim.run();
  ASSERT_EQ(order.size(), 10000u);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, EqualTimeFifoOrderAcrossHeapAndCalendar) {
  // Same-nanosecond events split across the two storage layers: the
  // first batch at 10 ms lands in the near heap (queue still small),
  // the 1 ms fillers pull the heap front earlier, and the second 10 ms
  // batch — scheduled once the queue is past the park threshold with
  // the calendar anchored at the 1 ms front — parks in the calendar.
  // The drain must hand firing back in exact global scheduling order.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_after(10_ms, [&order, i] { order.push_back(i); });
  int fillers = 0;
  for (int i = 0; i < 60; ++i)
    sim.schedule_after(1_ms, [&fillers] { ++fillers; });
  for (int i = 10; i < 50; ++i)
    sim.schedule_after(10_ms, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(fillers, 60);
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, ManyPendingEventsPopInTimeThenFifoOrder) {
  // Mixed far/near delays large enough to exercise calendar parking and
  // multi-level cascades; the pop order must be (when, seq) sorted.
  Simulator sim;
  Rng rng{7};
  std::vector<std::pair<std::int64_t, int>> fired;
  int n = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto delay =
        Duration::nanos(std::int64_t(rng.uniform_int(3'600'000'000'000ull)));
    sim.schedule_after(delay, [&fired, &sim, seq = n++] {
      fired.emplace_back(sim.now().ns(), seq);
    });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 20000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first)
      ASSERT_LT(fired[i - 1].second, fired[i].second);
  }
}

TEST(Simulator, FarFutureClampedEventsSurviveBucketCascade) {
  // Two dense waves exactly one full top-calendar-rotation (~52
  // simulated days) apart alias to the same top-level slot; the second
  // wave is beyond the hierarchy's span, so draining the first wave
  // re-parks it into the very bucket being drained. It must survive
  // the detach-and-cascade and fire at its exact time.
  Simulator sim;
  int fillers = 0;
  for (int i = 0; i < 64; ++i)
    sim.schedule_after(1_ms, [&fillers] { ++fillers; });
  const auto t1 = TimePoint::from_ns(std::int64_t{1} << 46);  // ~19.5 h
  const auto t2 = TimePoint::from_ns((std::int64_t{1} << 46) +
                                     (std::int64_t{1} << 52));
  int fired_t1 = 0;
  int fired_t2 = 0;
  for (int i = 0; i < 300; ++i) {
    sim.schedule_at(t1, [&] {
      EXPECT_EQ(sim.now().ns(), t1.ns());
      ++fired_t1;
    });
    sim.schedule_at(t2, [&] {
      EXPECT_EQ(sim.now().ns(), t2.ns());
      ++fired_t2;
    });
  }
  sim.run();
  EXPECT_EQ(fillers, 64);
  EXPECT_EQ(fired_t1, 300);
  EXPECT_EQ(fired_t2, 300);
}

TEST(Simulator, RunUntilDiscardsExactlyAtHorizonEvents) {
  // The horizon is half-open: an event at exactly the horizon does not
  // fire during this run_until — it stays pending for the next run.
  Simulator sim;
  int fired = 0;
  sim.schedule_after(3_ms, [&] { ++fired; });
  sim.run_until(TimePoint{} + 3_ms);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.now().ns(), (3_ms).ns());
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopMidBatchLeavesRemainingEqualTimeEventsPending) {
  // stop() from inside one event of an equal-time batch: the current
  // action completes, the rest of the batch stays queued.
  Simulator sim;
  std::vector<int> ran;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_after(1_ms, [&, i] {
      ran.push_back(i);
      if (i == 2) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.pending_events(), 5u);
}

TEST(Simulator, RunUntilAdvancesClockToHorizonEvenAfterStop) {
  // run_until means "simulate this window": the clock lands on the
  // horizon even when stop() ended processing early (the contract the
  // pre-arena kernel established).
  Simulator sim;
  int fired = 0;
  sim.schedule_after(5_ms, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(50_ms, [&] { ++fired; });
  sim.run_until(TimePoint{} + 100_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.now().ns(), (100_ms).ns());
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, PeriodicCancelFromInsideOwnActionIsImmediate) {
  Simulator sim;
  int fired = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(5_ms, [&] {
    ++fired;
    handle.cancel();  // first firing disarms the timer
    EXPECT_FALSE(handle.active());
  });
  sim.run_until(TimePoint{} + 100_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(handle.active());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ScheduleEveryHonoursFirstDelayIncludingZero) {
  Simulator sim;
  std::vector<std::int64_t> at;
  auto handle = sim.schedule_every(Duration{}, 10_ms, [&] {
    at.push_back(sim.now().ns());
  });
  sim.run_until(TimePoint{} + 35_ms);
  EXPECT_EQ(at, (std::vector<std::int64_t>{0, (10_ms).ns(), (20_ms).ns(),
                                           (30_ms).ns()}));
  handle.cancel();

  std::vector<std::int64_t> offset;
  Simulator sim2;
  sim2.schedule_every(3_ms, 10_ms, [&] {
    offset.push_back(sim2.now().ns());
  });
  sim2.run_until(TimePoint{} + 25_ms);
  EXPECT_EQ(offset, (std::vector<std::int64_t>{(3_ms).ns(), (13_ms).ns(),
                                               (23_ms).ns()}));
}

TEST(Simulator, ScheduleEveryUntilStopsStrictlyBeforeUntil) {
  Simulator sim;
  int fired = 0;
  auto handle =
      sim.schedule_every_until(10_ms, TimePoint{} + 30_ms, [&] { ++fired; });
  sim.run();  // the schedule self-terminates, so run() drains
  EXPECT_EQ(fired, 2);  // 10 ms and 20 ms; 30 ms is excluded
  EXPECT_FALSE(handle.active());

  // No firing fits: inactive handle, nothing scheduled.
  Simulator sim2;
  auto none =
      sim2.schedule_every_until(10_ms, TimePoint{} + 10_ms, [&] { ++fired; });
  EXPECT_FALSE(none.active());
  EXPECT_EQ(sim2.pending_events(), 0u);
}

TEST(Simulator, ScheduleOnceFiresOnceAndCancelDisarms) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_once(2_ms, [&] { ++fired; });
  EXPECT_TRUE(handle.active());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(handle.active());  // one-shot released after firing

  auto cancelled = sim.schedule_once(2_ms, [&] { ++fired; });
  cancelled.cancel();
  EXPECT_FALSE(cancelled.active());
  sim.run();
  EXPECT_EQ(fired, 1);  // never fired
}

TEST(Simulator, StaleHandleCancelIsANoOpAfterSlotReuse) {
  Simulator sim;
  int first = 0;
  int second = 0;
  auto a = sim.schedule_once(1_ms, [&] { ++first; });
  sim.run();
  EXPECT_EQ(first, 1);
  // The slab slot of `a` is free; the next timer likely reuses it.
  auto b = sim.schedule_once(1_ms, [&] { ++second; });
  a.cancel();  // stale generation: must NOT disarm b
  EXPECT_TRUE(b.active());
  sim.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulator, OneShotCancellationUnderChurnNeverMisfires) {
  // The request-timeout pattern under heavy slot recycling: every
  // "request" arms a deadline; completions cancel it just in time,
  // reusing freed timer slots across many generations. Exactly the
  // uncancelled deadlines may fire, each exactly once, and cancelling
  // an already-fired handle must stay a no-op.
  Simulator sim;
  constexpr int kRequests = 2000;
  std::vector<Simulator::TimerHandle> deadline(kRequests);
  std::vector<int> timeout_fired(kRequests, 0);
  int completions = 0;
  int expected_completions = 0;
  for (int r = 0; r < kRequests; ++r) {
    if (r % 3 != 2) ++expected_completions;
    sim.schedule_at(TimePoint{} + Duration::micros(10 * r), [&, r] {
      deadline[r] = sim.schedule_once(
          Duration::micros(500), [&, r] { ++timeout_fired[r]; });
      // Every third request "times out": its completion never arrives.
      if (r % 3 == 2) return;
      sim.schedule_after(Duration::micros(499 - (r % 97)), [&, r] {
        deadline[r].cancel();
        ++completions;
      });
    });
  }
  sim.run();
  EXPECT_EQ(completions, expected_completions);
  for (int r = 0; r < kRequests; ++r) {
    EXPECT_EQ(timeout_fired[r], r % 3 == 2 ? 1 : 0) << r;
    deadline[r].cancel();  // stale: fired or cancelled long ago
  }
  // The churned wheel still arms and fires cleanly afterwards.
  int late = 0;
  sim.schedule_once(1_ms, [&] { ++late; });
  sim.run();
  EXPECT_EQ(late, 1);
}

TEST(Simulator, PeriodicAndOneShotAtEqualTimeKeepFifoOrder) {
  // A one-shot scheduled before a periodic's re-arm point runs first at
  // the shared instant: the periodic takes a fresh (later) seq when it
  // re-arms after each firing, exactly like trampoline re-scheduling.
  Simulator sim;
  std::vector<std::string> order;
  sim.schedule_at(TimePoint{} + 20_ms, [&] { order.push_back("oneshot"); });
  auto handle = sim.schedule_periodic(10_ms, [&] {
    order.push_back("periodic@" + std::to_string(sim.now().ns() / 1000000));
  });
  sim.run_until(TimePoint{} + 25_ms);
  handle.cancel();
  EXPECT_EQ(order, (std::vector<std::string>{"periodic@10", "oneshot",
                                             "periodic@20"}));
}

// --------------------------------------------------------- InplaceAction

TEST(InplaceAction, SmallCapturesStayInline) {
  struct Big {
    std::int64_t a, b, c, d, e;  // 40 bytes: inline
  };
  const auto lambda = [big = Big{1, 2, 3, 4, 5}] { (void)big; };
  EXPECT_TRUE(InplaceAction::fits_inline<decltype(lambda)>());
  struct Huge {
    std::int64_t xs[9];  // 72 bytes: heap fallback
  };
  const auto fat = [huge = Huge{}] { (void)huge; };
  EXPECT_FALSE(InplaceAction::fits_inline<decltype(fat)>());
}

TEST(InplaceAction, InvokesInlineAndHeapCallables) {
  int hits = 0;
  InplaceAction small{[&hits] { ++hits; }};
  small();
  EXPECT_EQ(hits, 1);

  std::array<std::int64_t, 16> payload{};
  payload[15] = 42;
  std::int64_t seen = 0;
  InplaceAction large{[payload, &seen] { seen = payload[15]; }};
  large();
  EXPECT_EQ(seen, 42);
}

TEST(InplaceAction, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  InplaceAction a{[&hits] { ++hits; }};
  InplaceAction b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InplaceAction c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceAction, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    InplaceAction act{[counter] { }};
    EXPECT_EQ(counter.use_count(), 2);
    InplaceAction moved{std::move(act)};
    EXPECT_EQ(counter.use_count(), 2);  // relocation, not a copy
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// ------------------------------------------------------------ ParallelRunner

TEST(ParallelRunner, RunsEveryJobExactlyOnce) {
  const ParallelRunner runner{4};
  std::vector<std::atomic<int>> hits(257);
  runner.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, ZeroJobsIsNoop) {
  const ParallelRunner runner{4};
  bool called = false;
  runner.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRunner, MapPreservesIndexOrder) {
  const ParallelRunner runner{4};
  const auto squares = runner.map<int>(
      100, [](std::size_t i) { return int(i * i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(squares[std::size_t(i)], i * i);
}

TEST(ParallelRunner, SingleThreadFallback) {
  const ParallelRunner runner{1};
  EXPECT_EQ(runner.thread_count(), 1u);
  std::vector<int> order;
  runner.run(10, [&](std::size_t i) { order.push_back(int(i)); });
  // Single-threaded execution is strictly sequential.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(ParallelRunner, DefaultsToHardwareConcurrency) {
  const ParallelRunner runner;
  EXPECT_GE(runner.thread_count(), 1u);
}

TEST(ParallelRunner, ParallelEqualsSerialForSeededSimulations) {
  // The core determinism contract: simulations seeded via derive_seed
  // produce identical results regardless of the worker count.
  const auto simulate = [](std::size_t i) {
    Simulator sim{derive_seed(42, i)};
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) acc += sim.rng().uniform();
    return acc;
  };
  const ParallelRunner serial{1};
  const ParallelRunner parallel{4};
  const auto a = serial.map<double>(64, simulate);
  const auto b = parallel.map<double>(64, simulate);
  EXPECT_EQ(a, b);
}

TEST(ParallelRunner, MoreJobsThanThreads) {
  const ParallelRunner runner{3};
  std::atomic<std::int64_t> sum{0};
  runner.run(1000, [&](std::size_t i) {
    sum.fetch_add(std::int64_t(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ParallelRunner, ChunkedRunCoversEveryJobExactlyOnce) {
  const ParallelRunner runner{4};
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(257);
    runner.run_chunked(hits.size(), chunk, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "chunk " << chunk;
  }
}

TEST(ParallelRunner, OversizedChunkIsClampedToAFairSplit) {
  // Regression: chunk >= job_count used to serialise the whole run on
  // the calling thread even with a multi-thread pool (Campaign plans
  // with a large fixed chunk and a small grid lost all parallelism).
  // With the clamp, 64 jobs over 4 threads split into 16-job chunks, so
  // several distinct threads participate.
  const ParallelRunner runner{4};
  std::mutex mu;
  std::map<std::thread::id, int> per_thread;
  runner.run_chunked(64, 1000, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard<std::mutex> lock(mu);
    ++per_thread[std::this_thread::get_id()];
  });
  int total = 0;
  for (const auto& [tid, count] : per_thread) total += count;
  EXPECT_EQ(total, 64);
  EXPECT_GE(per_thread.size(), 2u);
}

TEST(ParallelRunner, OversizedChunkEdgeCasesCoverEveryJobOnce) {
  const ParallelRunner runner{4};
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3},
                                 std::size_t{4}, std::size_t{5}}) {
    for (const std::size_t chunk :
         {jobs, jobs + 1, std::size_t{1000000}}) {
      std::vector<std::atomic<int>> hits(jobs);
      runner.run_chunked(jobs, chunk, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1) << "jobs " << jobs << " chunk " << chunk;
    }
  }
  bool called = false;
  runner.run_chunked(0, 1000000, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRunner, ChunkSizeNeverChangesSeededResults) {
  // Seeds derive from the job index alone, so chunk geometry (including
  // the oversized-chunk clamp path) must never leak into results.
  const auto simulate = [](std::size_t i) {
    Simulator sim{derive_seed(99, i)};
    double acc = 0.0;
    for (int k = 0; k < 50; ++k) acc += sim.rng().uniform();
    return acc;
  };
  const ParallelRunner runner{4};
  const auto run_with_chunk = [&](std::size_t chunk) {
    std::vector<double> out(24);
    runner.run_chunked(out.size(), chunk,
                       [&](std::size_t i) { out[i] = simulate(i); });
    return out;
  };
  const auto reference = run_with_chunk(1);
  EXPECT_EQ(reference, run_with_chunk(5));
  EXPECT_EQ(reference, run_with_chunk(24));
  EXPECT_EQ(reference, run_with_chunk(1000));  // the clamped path
}

TEST(ParallelRunner, ChunkedRunKeepsChunksContiguousPerWorker) {
  // Within one chunk the indices run sequentially on a single worker —
  // record the order per thread and check each worker's sequence is
  // piecewise-ascending in steps of 1 within chunk boundaries.
  const ParallelRunner runner{2};
  constexpr std::size_t kChunk = 10;
  std::mutex mu;
  std::map<std::thread::id, std::vector<std::size_t>> per_thread;
  runner.run_chunked(100, kChunk, [&](std::size_t i) {
    const std::lock_guard<std::mutex> lock(mu);
    per_thread[std::this_thread::get_id()].push_back(i);
  });
  for (const auto& [tid, seq] : per_thread) {
    for (std::size_t k = 1; k < seq.size(); ++k) {
      if (seq[k] % kChunk != 0) EXPECT_EQ(seq[k], seq[k - 1] + 1);
    }
  }
}

}  // namespace
}  // namespace sixg::netsim
