#include <gtest/gtest.h>

#include "apps/ar_game.hpp"
#include "apps/protocols.hpp"
#include "apps/traffic.hpp"
#include "stats/summary.hpp"

namespace sixg::apps {
namespace {

using namespace sixg::literals;

// ---------------------------------------------------------------- protocols

TEST(Protocols, OverheadInSurveyBand) {
  // Baylms et al. [14]: IoT protocols add ~5-8 ms.
  for (const auto p :
       {IotProtocol::kMqtt, IotProtocol::kAmqp, IotProtocol::kCoap}) {
    const double ms = ProtocolOverheadModel::expected_overhead(p).ms();
    EXPECT_GE(ms, 4.0) << to_string(p);
    EXPECT_LE(ms, 9.0) << to_string(p);
  }
  EXPECT_LT(ProtocolOverheadModel::expected_overhead(IotProtocol::kRawUdp)
                .ms(),
            0.5);
}

TEST(Protocols, RelativeOrdering) {
  const double mqtt =
      ProtocolOverheadModel::expected_overhead(IotProtocol::kMqtt).ms();
  const double amqp =
      ProtocolOverheadModel::expected_overhead(IotProtocol::kAmqp).ms();
  const double coap =
      ProtocolOverheadModel::expected_overhead(IotProtocol::kCoap).ms();
  EXPECT_LT(coap, mqtt);
  EXPECT_LT(mqtt, amqp);
}

TEST(Protocols, AckSemantics) {
  EXPECT_TRUE(ProtocolOverheadModel::requires_ack_roundtrip(
      IotProtocol::kMqtt));
  EXPECT_TRUE(ProtocolOverheadModel::requires_ack_roundtrip(
      IotProtocol::kAmqp));
  EXPECT_FALSE(ProtocolOverheadModel::requires_ack_roundtrip(
      IotProtocol::kCoap));
}

TEST(Protocols, SampleMeanTracksExpectation) {
  Rng rng{1};
  stats::Summary s;
  for (int i = 0; i < 50000; ++i)
    s.add(ProtocolOverheadModel::sample_overhead(IotProtocol::kMqtt, rng)
              .ms());
  EXPECT_NEAR(
      s.mean() /
          ProtocolOverheadModel::expected_overhead(IotProtocol::kMqtt).ms(),
      1.0, 0.05);
}

// ---------------------------------------------------------------- AR game

ArGameSession::Config fast_config() {
  ArGameSession::Config config;
  config.frames = 6000;
  return config;
}

TEST(ArGame, PerfectNetworkIsFullyConsistent) {
  const ArGameSession session{
      [](Rng&) { return Duration::micros(100); }, fast_config()};
  const auto report = session.run();
  EXPECT_DOUBLE_EQ(report.consistent_frame_share, 1.0);
  EXPECT_DOUBLE_EQ(report.mis_registration_share, 0.0);
  EXPECT_TRUE(report.playable());
}

TEST(ArGame, SlowNetworkIsUnplayable) {
  const ArGameSession session{
      [](Rng&) { return Duration::from_millis_f(61.0); }, fast_config()};
  const auto report = session.run();
  EXPECT_DOUBLE_EQ(report.consistent_frame_share, 0.0);
  EXPECT_DOUBLE_EQ(report.mis_registration_share, 1.0);
  EXPECT_FALSE(report.playable());
}

TEST(ArGame, BudgetBoundaryIsExact) {
  // Exactly at budget: consistent. Just over: not.
  const ArGameSession at{[](Rng&) { return Duration::from_millis_f(20.0); },
                         fast_config()};
  EXPECT_DOUBLE_EQ(at.run().consistent_frame_share, 1.0);
  const ArGameSession over{
      [](Rng&) { return Duration::from_millis_f(20.01); }, fast_config()};
  EXPECT_DOUBLE_EQ(over.run().consistent_frame_share, 0.0);
}

TEST(ArGame, ConsistencyMonotoneInLatency) {
  double prev = 1.1;
  for (double ms : {5.0, 15.0, 19.0, 21.0, 40.0}) {
    ArGameSession::Config config = fast_config();
    config.seed = 1234;  // same pacing draws
    const ArGameSession session{
        [ms](Rng& rng) {
          return Duration::from_millis_f(ms + rng.uniform(0.0, 4.0));
        },
        config};
    const double share = session.run().consistent_frame_share;
    EXPECT_LE(share, prev + 1e-9) << ms;
    prev = share;
  }
}

TEST(ArGame, FrameAgeIncludesPipelineAndPacing) {
  ArGameSession::Config config = fast_config();
  const ArGameSession session{
      [](Rng&) { return Duration::from_millis_f(10.0); }, config};
  const auto report = session.run();
  // age = RTT/2 (5) + mean pacing (8.3) + render (3.2) ~ 16.5 ms.
  EXPECT_NEAR(report.frame_age_ms.mean(), 16.5, 0.5);
}

TEST(ArGame, ThrowRateMatchesConfig) {
  ArGameSession::Config config = fast_config();
  config.frames = 60000;
  config.throws_per_second = 1.2;
  const ArGameSession session{
      [](Rng&) { return Duration::from_millis_f(5.0); }, config};
  const auto report = session.run();
  const double seconds = config.frames / config.frame_rate_hz;
  EXPECT_NEAR(report.throws / seconds, 1.2, 0.12);
}

TEST(ArGame, DeterministicPerSeed) {
  const auto run = [] {
    ArGameSession::Config config = fast_config();
    config.seed = 99;
    const ArGameSession session{
        [](Rng& rng) {
          return Duration::from_millis_f(15.0 + 10.0 * rng.uniform());
        },
        config};
    return session.run();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.consistent_frame_share, b.consistent_frame_share);
  EXPECT_EQ(a.throws, b.throws);
}

// ---------------------------------------------------------------- traffic

TEST(Traffic, AutonomousVehicleMatchesPaperVolume) {
  const auto av = DomainTraffic::autonomous_vehicle();
  EXPECT_DOUBLE_EQ(av.volume_per_day.byte_count(), 4e12);  // 4 TB/day
  // 4 TB / 86400 s ~ 370 Mbps sustained.
  EXPECT_NEAR(av.sustained_rate.mbps_f(), 370.0, 10.0);
}

TEST(Traffic, FactoryLineMatchesPaperVolume) {
  const auto line = DomainTraffic::smart_factory_line();
  EXPECT_DOUBLE_EQ(line.volume_per_day.byte_count(), 5e12);  // >5 TB/day
}

TEST(Traffic, SurgeryExceedsTenGigabytesPerDay) {
  const auto surgery = DomainTraffic::remote_surgery();
  EXPECT_GT(surgery.volume_per_day.byte_count(), 10e9);
}

TEST(Traffic, AllDomainsEnumerated) {
  const auto all = DomainTraffic::all();
  EXPECT_EQ(all.size(), 5u);
  const auto matrix = DomainTraffic::matrix();
  EXPECT_EQ(matrix.row_count(), all.size());
}

TEST(Traffic, ScalabilityArithmetic) {
  const ScalabilityModel model;
  // 125e9 devices / 1.9e6 km^2 ~ 66k devices per km^2.
  EXPECT_NEAR(model.required_density(), 65789.0, 1000.0);
  EXPECT_TRUE(model.feasible_5g());  // at the design target, on paper
  EXPECT_TRUE(model.feasible_6g());
  // But halve the urban area (devices concentrate) and 5G breaks.
  ScalabilityModel dense = model;
  dense.urbanised_area_km2 /= 2.0;
  EXPECT_FALSE(dense.feasible_5g());
  EXPECT_TRUE(dense.feasible_6g());
}

}  // namespace
}  // namespace sixg::apps
