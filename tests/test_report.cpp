#include <gtest/gtest.h>

#include "core/report.hpp"
#include "topo/backbone.hpp"

namespace sixg {
namespace {

core::StudyReport::Options fast_options() {
  core::StudyReport::Options options;
  options.whatif.samples = 300;
  return options;
}

TEST(StudyReport, RendersAllSections) {
  core::StudyReport report{fast_options()};
  const std::string md = report.render();
  EXPECT_NE(md.find("## Application requirements"), std::string::npos);
  EXPECT_NE(md.find("## Drive-test campaign"), std::string::npos);
  EXPECT_NE(md.find("## Local service request"), std::string::npos);
  EXPECT_NE(md.find("## Recommendations"), std::string::npos);
  // The Table I hostnames must appear in the rendered trace.
  EXPECT_NE(md.find("datapacket.com"), std::string::npos);
  EXPECT_NE(md.find("zetservers.peering.cz"), std::string::npos);
}

TEST(StudyReport, SectionTogglesWork) {
  auto options = fast_options();
  options.include_campaign = false;
  options.include_recommendations = false;
  const std::string md = core::StudyReport{options}.render();
  EXPECT_EQ(md.find("## Drive-test campaign"), std::string::npos);
  EXPECT_EQ(md.find("## Recommendations"), std::string::npos);
  EXPECT_NE(md.find("## Application requirements"), std::string::npos);
}

TEST(StudyReport, DeterministicOutput) {
  auto options = fast_options();
  options.include_recommendations = false;  // keep the test quick
  const std::string a = core::StudyReport{options}.render();
  const std::string b = core::StudyReport{options}.render();
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------ failure injection

TEST(FailureInjection, Tier1PeerCutPartitionsTheBackbone) {
  topo::Backbone backbone = topo::build_backbone(1);
  // Stubs homed west vs east communicate across the tier-1 peering; cut
  // it and single-homed pairs on opposite sides lose connectivity.
  const auto t1_view = backbone.net.links_of(
      *backbone.net.find_node("t1-fra"));
  const std::vector<topo::LinkId> t1_links(t1_view.begin(), t1_view.end());
  for (const auto link : t1_links) {
    if (backbone.net.link(link).relation == topo::LinkRelation::kPeer)
      backbone.net.remove_link(link);
  }
  int unreachable = 0;
  int total = 0;
  for (std::size_t i = 0; i < backbone.stub_hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < backbone.stub_hosts.size(); ++j) {
      ++total;
      if (!backbone.net
               .find_path(backbone.stub_hosts[i], backbone.stub_hosts[j])
               .valid())
        ++unreachable;
    }
  }
  EXPECT_GT(unreachable, 0);
  EXPECT_LT(unreachable, total);  // same-side pairs keep working
}

TEST(FailureInjection, MultiHomedIspsSurviveOneTransitLoss) {
  topo::Backbone backbone = topo::build_backbone(1);
  // Every third regional ISP is multi-homed; removing one of its transit
  // links must leave it reachable from both tier-1s.
  const std::size_t multihomed_index = 2;  // regional.size()%3==0 at build
  const topo::NodeId core = backbone.regional_core[multihomed_index];
  const auto links = backbone.net.links_of(core);
  std::vector<topo::LinkId> transits;
  for (const auto link : links) {
    const auto& l = backbone.net.link(link);
    // Transit = links where the ISP core is the *customer* side.
    const bool customer_side =
        (l.a == core && l.relation == topo::LinkRelation::kCustomerOfB) ||
        (l.b == core && l.relation == topo::LinkRelation::kProviderOfB);
    if (customer_side) transits.push_back(link);
  }
  ASSERT_EQ(transits.size(), 2u);
  backbone.net.remove_link(transits.front());
  const auto t1_west = *backbone.net.find_node("t1-fra");
  const auto t1_east = *backbone.net.find_node("t1-vie");
  EXPECT_TRUE(backbone.net.find_path(t1_west, core).valid());
  EXPECT_TRUE(backbone.net.find_path(t1_east, core).valid());
}

}  // namespace
}  // namespace sixg
