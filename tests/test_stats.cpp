#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "stats/bootstrap.hpp"
#include "stats/distributions.hpp"
#include "stats/fast_math.hpp"
#include "stats/histogram.hpp"
#include "stats/reservoir.hpp"
#include "stats/summary.hpp"

namespace sixg::stats {
namespace {

// ---------------------------------------------------------------- Summary

TEST(Summary, KnownValues) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  a.add(2.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

/// Property: merging partial summaries must equal the serial summary,
/// for any split point. This is the invariant the parallel campaign
/// runner relies on.
class SummaryMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SummaryMergeProperty, MergeEqualsSerial) {
  Rng rng{std::uint64_t(GetParam()) * 7919 + 1};
  std::vector<double> data(500);
  for (auto& x : data) x = rng.uniform(-100.0, 100.0);

  Summary serial;
  for (double x : data) serial.add(x);

  const std::size_t split =
      std::size_t(GetParam()) * data.size() / 10;
  Summary left;
  Summary right;
  for (std::size_t i = 0; i < data.size(); ++i)
    (i < split ? left : right).add(data[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), serial.count());
  EXPECT_NEAR(left.mean(), serial.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), serial.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), serial.min());
  EXPECT_DOUBLE_EQ(left.max(), serial.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, SummaryMergeProperty,
                         ::testing::Range(0, 11));

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BinEdgesAndCounts) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h{0.0, 1.0, 4};
  h.add(-5.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, CdfMonotoneAndBounded) {
  Histogram h{0.0, 100.0, 50};
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.0, 100.0));
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  // Uniform data: CDF at midpoint ~ 0.5.
  EXPECT_NEAR(h.cdf(50.0), 0.5, 0.03);
}

TEST(Histogram, QuantileInvertsCdf) {
  Histogram h{0.0, 100.0, 100};
  Rng rng{4};
  for (int i = 0; i < 20000; ++i) h.add(rng.uniform(0.0, 100.0));
  for (double q : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(h.cdf(h.quantile(q)), q, 0.02);
  }
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a{0.0, 10.0, 10};
  Histogram b{0.0, 10.0, 10};
  a.add(1.0);
  b.add(1.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bin(1), 2u);
  EXPECT_EQ(a.bin(5), 1u);
}

TEST(QuantileSample, ExactQuantiles) {
  QuantileSample q;
  for (int i = 1; i <= 100; ++i) q.add(double(i));
  EXPECT_NEAR(q.median(), 50.5, 1e-9);
  EXPECT_NEAR(q.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(q.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(q.quantile(0.25), 25.75, 1e-9);
}

TEST(QuantileSample, MergeCombines) {
  QuantileSample a;
  QuantileSample b;
  for (int i = 1; i <= 50; ++i) a.add(double(i));
  for (int i = 51; i <= 100; ++i) b.add(double(i));
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_NEAR(a.median(), 50.5, 1e-9);
}

// ------------------------------------------------------------ distributions

TEST(Distributions, NormalMoments) {
  Rng rng{5};
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(sample_normal(rng, 10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

struct LognormalCase {
  double median;
  double sigma;
};

class LognormalProperty : public ::testing::TestWithParam<LognormalCase> {};

TEST_P(LognormalProperty, MedianAndMeanMatchTheory) {
  const auto param = GetParam();
  const Lognormal dist = Lognormal::from_median(param.median, param.sigma);
  EXPECT_NEAR(dist.median(), param.median, 1e-9);

  Rng rng{17};
  QuantileSample q;
  Summary s;
  for (int i = 0; i < 100000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GT(x, 0.0);
    q.add(x);
    s.add(x);
  }
  EXPECT_NEAR(q.median() / param.median, 1.0, 0.03);
  EXPECT_NEAR(s.mean() / dist.mean(), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LognormalProperty,
    ::testing::Values(LognormalCase{1.0, 0.1}, LognormalCase{10.0, 0.4},
                      LognormalCase{65.0, 0.25}, LognormalCase{0.5, 0.8}));

TEST(Distributions, ShiftedExponentialMoments) {
  const ShiftedExponential dist{5.0, 2.0};
  Rng rng{6};
  Summary s;
  for (int i = 0; i < 100000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 5.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 7.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

struct GammaCase {
  double shape;
  double scale;
};

class GammaProperty : public ::testing::TestWithParam<GammaCase> {};

TEST_P(GammaProperty, MeanAndVarianceMatchTheory) {
  const auto param = GetParam();
  const Gamma dist{param.shape, param.scale};
  Rng rng{18};
  Summary s;
  for (int i = 0; i < 150000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GT(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean() / (param.shape * param.scale), 1.0, 0.03);
  const double var = param.shape * param.scale * param.scale;
  EXPECT_NEAR(s.variance() / var, 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Cases, GammaProperty,
                         ::testing::Values(GammaCase{0.5, 1.0},
                                           GammaCase{1.0, 2.0},
                                           GammaCase{2.0, 0.5},
                                           GammaCase{9.0, 3.0}));

TEST(Distributions, TruncatedNormalRespectsFloor) {
  const TruncatedNormal dist{1.0, 2.0, 0.5};
  Rng rng{7};
  for (int i = 0; i < 20000; ++i) EXPECT_GE(dist.sample(rng), 0.5);
}

TEST(Distributions, PoissonSmallLambda) {
  Rng rng{8};
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(double(sample_poisson(rng, 3.0)));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.variance(), 3.0, 0.15);
}

TEST(Distributions, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng{9};
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(double(sample_poisson(rng, 200.0)));
  EXPECT_NEAR(s.mean(), 200.0, 1.0);
  EXPECT_NEAR(s.variance(), 200.0, 10.0);
}

TEST(Distributions, PoissonZeroLambda) {
  Rng rng{10};
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

// ---------------------------------------------------------------- bootstrap

TEST(Bootstrap, CiContainsTrueMeanForWellBehavedData) {
  Rng rng{11};
  std::vector<double> sample(400);
  for (auto& x : sample) x = sample_normal(rng, 50.0, 5.0);
  const Interval ci = bootstrap_mean_ci(sample, 0.95, 2000, 99);
  EXPECT_TRUE(ci.contains(50.0)) << "[" << ci.lo << "," << ci.hi << "]";
  EXPECT_LT(ci.width(), 2.5);
  EXPECT_GT(ci.width(), 0.0);
}

TEST(Bootstrap, DeterministicForSeed) {
  std::vector<double> sample{1, 2, 3, 4, 5, 6, 7, 8};
  const Interval a = bootstrap_mean_ci(sample, 0.9, 500, 7);
  const Interval b = bootstrap_mean_ci(sample, 0.9, 500, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, HigherConfidenceWidensInterval) {
  Rng rng{12};
  std::vector<double> sample(200);
  for (auto& x : sample) x = rng.uniform(0.0, 10.0);
  const Interval narrow = bootstrap_mean_ci(sample, 0.80, 2000, 3);
  const Interval wide = bootstrap_mean_ci(sample, 0.99, 2000, 3);
  EXPECT_GT(wide.width(), narrow.width());
}

// ------------------------------------------------------------- fast_log

TEST(FastLog, TracksLibmAcrossTheSamplerDomain) {
  // The exponential samplers feed x = 1 - uniform() in (0, 1]; fast_log
  // must stay within a few ulp of libm there (the committed-table kernel
  // is accurate to ~2.5e-16 absolute for |log| < 1).
  Rng rng{2024};
  for (int i = 0; i < 2'000'000; ++i) {
    const double x = 1.0 - rng.uniform();
    const double ref = std::log(x);
    const double fast = fast_log(x);
    const double tol = 1e-15 * std::max(1.0, std::fabs(ref));
    ASSERT_NEAR(ref, fast, tol) << "x=" << x;
  }
}

TEST(FastLog, TracksLibmAcrossMagnitudes) {
  Rng rng{7};
  for (int exp10 = -300; exp10 <= 300; exp10 += 7) {
    const double scale = std::pow(10.0, exp10);
    for (int i = 0; i < 200; ++i) {
      const double x = rng.uniform(0.5, 1.5) * scale;
      const double ref = std::log(x);
      ASSERT_NEAR(ref, fast_log(x), 1e-15 * std::max(1.0, std::fabs(ref)))
          << "x=" << x;
    }
  }
}

TEST(FastLog, SpecialValuesMatchLibmSemantics) {
  // log(1) is ~1e-17, not exactly 0 (table method); every sampler
  // truncates to integer nanoseconds, which absorbs it.
  EXPECT_NEAR(fast_log(1.0), 0.0, 1e-15);
  EXPECT_TRUE(std::isinf(fast_log(0.0)));
  EXPECT_LT(fast_log(0.0), 0.0);
  EXPECT_TRUE(std::isnan(fast_log(-1.0)));
  EXPECT_TRUE(std::isinf(fast_log(
      std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(fast_log(
      std::numeric_limits<double>::quiet_NaN())));
  // Subnormals route through the fallback and stay finite.
  const double sub = std::numeric_limits<double>::denorm_min();
  EXPECT_NEAR(fast_log(sub), std::log(sub), 1e-12);
}

// ---------------------------------------------------------- reservoir

TEST(ReservoirQuantile, ExactBelowCapMatchesRetainedSample) {
  // Below the cap the reservoir IS the retain-everything sampler: same
  // storage order, same interpolation, bit-identical quantiles.
  ReservoirQuantile r{256, 1};
  QuantileSample exact;
  Rng rng{9};
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 50.0);
    r.add(x);
    exact.add(x);
  }
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.count(), 200u);
  EXPECT_EQ(r.sample_count(), 200u);
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(r.quantile(q), exact.quantile(q)) << q;
  }
}

TEST(ReservoirQuantile, CappedStreamStaysBoundedAndAccurate) {
  ReservoirQuantile r{2048, 7};
  Rng rng{13};
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) r.add(rng.uniform(0.0, 1.0));
  EXPECT_FALSE(r.exact());
  EXPECT_EQ(r.count(), std::uint64_t(kSamples));
  EXPECT_EQ(r.sample_count(), 2048u);
  // A uniform stream: the sampled quantiles must track the true ones.
  EXPECT_NEAR(r.quantile(0.5), 0.5, 0.05);
  EXPECT_NEAR(r.quantile(0.9), 0.9, 0.05);
  EXPECT_NEAR(r.quantile(0.99), 0.99, 0.02);
}

TEST(ReservoirQuantile, DeterministicForFixedSeed) {
  ReservoirQuantile a{128, 3};
  ReservoirQuantile b{128, 3};
  ReservoirQuantile other_seed{128, 4};
  Rng rng{21};
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    a.add(x);
    b.add(x);
    other_seed.add(x);
  }
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  // A different eviction stream keeps different residents.
  EXPECT_NE(a.quantile(0.5), other_seed.quantile(0.5));
}

// -------------------------------------------------- buffer renderers

TEST(BufferRenderers, SummaryAndHistogramAppendMatchStr) {
  Summary s;
  Histogram h{0.0, 10.0, 8};
  Rng rng{2};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 12.0);
    s.add(x);
    h.add(x);
  }
  std::string buf = "prefix:";
  s.to(buf);
  EXPECT_EQ(buf, "prefix:" + s.str());
  buf.clear();
  h.to(buf);
  EXPECT_EQ(buf, h.str());
  buf.clear();
  h.to(buf, 10);
  EXPECT_EQ(buf, h.str(10));
}

TEST(FastLog, ShiftedExponentialUsesTheSharedKernel) {
  // The distribution's inverse-CDF draw must equal the hand-written
  // expression over the same kernel — this is the contract CompiledPath
  // relies on for byte-equal sampling.
  const ShiftedExponential dist{0.0, 17.5};
  Rng a{5};
  Rng b{5};
  for (int i = 0; i < 10000; ++i) {
    const double expected =
        0.0 - 17.5 * fast_log_positive_normal(1.0 - b.uniform());
    ASSERT_EQ(dist.sample(a), expected);
  }
}

}  // namespace
}  // namespace sixg::stats
