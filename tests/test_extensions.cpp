// Tests for the extension/future-work models: mmWave PHY, video pipeline,
// federated learning rounds, gNB energy.

#include <gtest/gtest.h>

#include "apps/federated.hpp"
#include "apps/video.hpp"
#include "radio/energy.hpp"
#include "radio/mmwave.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace sixg {
namespace {

// ---------------------------------------------------------------- mmWave

TEST(MmWavePhy, CdfMatchesFezeuShape) {
  const radio::MmWavePhyModel phy;
  Rng rng{1};
  stats::Histogram hist{0.0, 25.0, 100};
  for (int i = 0; i < 200000; ++i) hist.add(phy.sample_one_way(rng).ms());
  // Fezeu et al. [22]: 4.4 % under 1 ms, 22.36 % under 3 ms.
  EXPECT_NEAR(hist.cdf(1.0) * 100.0, 4.4, 2.0);
  EXPECT_NEAR(hist.cdf(3.0) * 100.0, 22.36, 6.0);
  // Bulk of packets beyond 3 ms: beam management dominates.
  EXPECT_GT(hist.quantile(0.5), 3.0);
}

TEST(MmWavePhy, AlignedBeamIsSubMillisecond) {
  radio::MmWavePhyModel::Params params;
  params.p_aligned = 1.0;
  params.p_tracking = 0.0;
  params.bler = 0.0;
  const radio::MmWavePhyModel phy{params};
  Rng rng{2};
  for (int i = 0; i < 2000; ++i)
    EXPECT_LT(phy.sample_one_way(rng).ms(), 1.0);
}

TEST(MmWavePhy, BlerAddsHarqDelay) {
  radio::MmWavePhyModel::Params clean;
  clean.bler = 0.0;
  radio::MmWavePhyModel::Params lossy = clean;
  lossy.bler = 0.5;
  Rng rng_a{3};
  Rng rng_b{3};
  stats::Summary a;
  stats::Summary b;
  const radio::MmWavePhyModel pa{clean};
  const radio::MmWavePhyModel pb{lossy};
  for (int i = 0; i < 20000; ++i) {
    a.add(pa.sample_one_way(rng_a).ms());
    b.add(pb.sample_one_way(rng_b).ms());
  }
  EXPECT_GT(b.mean(), a.mean() + 0.3);
}

// ---------------------------------------------------------------- video

TEST(VideoPipeline, FastNetworkDeliversOnTime) {
  apps::VideoPipeline::Config config;
  config.frames = 6000;
  const apps::VideoPipeline pipeline{
      [](Rng&) { return Duration::from_millis_f(2.0); }, config};
  const auto report = pipeline.run();
  EXPECT_GT(report.on_time_share, 0.98);
  EXPECT_LT(report.glass_to_glass_ms.mean(), 16.0);
}

TEST(VideoPipeline, SlowNetworkStalls) {
  apps::VideoPipeline::Config config;
  config.frames = 6000;
  const apps::VideoPipeline pipeline{
      [](Rng&) { return Duration::from_millis_f(90.0); }, config};
  const auto report = pipeline.run();
  EXPECT_LT(report.on_time_share, 0.05);
  EXPECT_GT(report.stall_share, 0.95);
}

TEST(VideoPipeline, JitterBufferTradesLatencyForSmoothness) {
  apps::VideoPipeline::Config no_buffer;
  no_buffer.frames = 8000;
  no_buffer.jitter_buffer_frames = 0.0;
  apps::VideoPipeline::Config buffered = no_buffer;
  buffered.jitter_buffer_frames = 2.0;
  const auto jittery_rtt = [](Rng& rng) {
    return Duration::from_millis_f(8.0 + 30.0 * rng.uniform());
  };
  const auto a = apps::VideoPipeline{jittery_rtt, no_buffer}.run();
  const auto b = apps::VideoPipeline{jittery_rtt, buffered}.run();
  EXPECT_GT(b.on_time_share, a.on_time_share);
}

TEST(VideoPipeline, SharesSumToOne) {
  apps::VideoPipeline::Config config;
  config.frames = 3000;
  const apps::VideoPipeline pipeline{
      [](Rng& rng) { return Duration::from_millis_f(10.0 + 20.0 *
                                                    rng.uniform()); },
      config};
  const auto report = pipeline.run();
  EXPECT_NEAR(report.on_time_share + report.stall_share, 1.0, 1e-9);
  EXPECT_EQ(report.frames, 3000u);
}

// ---------------------------------------------------------------- federated

TEST(Federated, RoundTimeGatedByStragglers) {
  apps::FederatedRoundModel::Config config;
  config.rounds = 20;
  config.clients = 16;
  const apps::FederatedRoundModel model{
      [](Rng&) { return Duration::from_millis_f(5.0); }, config};
  const auto report = model.run();
  // Round time must exceed median training + transfer: the max over 16
  // lognormal draws sits well above the median.
  EXPECT_GT(report.round_seconds.mean(),
            config.local_training_mean.sec() + 1.0);
  EXPECT_GT(report.straggler_wait_seconds.mean(), 0.5);
}

TEST(Federated, SlowerNetworkRaisesNetworkShare) {
  apps::FederatedRoundModel::Config config;
  config.rounds = 15;
  const auto run_with_rate = [&](DataRate rate) {
    apps::FederatedRoundModel::Config c = config;
    c.uplink_rate = rate;
    const apps::FederatedRoundModel model{
        [](Rng&) { return Duration::from_millis_f(10.0); }, c};
    return model.run();
  };
  const auto fast = run_with_rate(DataRate::mbps(100));
  const auto slow = run_with_rate(DataRate::mbps(8));
  EXPECT_GT(slow.network_share, fast.network_share);
  EXPECT_GT(slow.round_seconds.mean(), fast.round_seconds.mean());
}

TEST(Federated, MathisBoundScalesAsExpected) {
  const Duration rtt = Duration::from_millis_f(100.0);
  const auto rate = apps::tcp_throughput_bound(rtt, 1e-4);
  // MSS 1460 B: 1460*8 / (0.1 * 0.01) = 11.68 Mbps.
  EXPECT_NEAR(rate.mbps_f(), 11.68, 0.1);
  // Quadrupling loss halves throughput.
  const auto lossy = apps::tcp_throughput_bound(rtt, 4e-4);
  EXPECT_NEAR(rate.mbps_f() / lossy.mbps_f(), 2.0, 0.01);
  // Halving RTT doubles it.
  const auto near_rtt =
      apps::tcp_throughput_bound(Duration::from_millis_f(50.0), 1e-4);
  EXPECT_NEAR(near_rtt.mbps_f() / rate.mbps_f(), 2.0, 0.01);
}

TEST(Federated, EffectiveUplinkCapsAtAccessRate) {
  const DataRate access = DataRate::mbps(40);
  // Tiny RTT: bound is huge, access wins.
  EXPECT_EQ(apps::effective_uplink(access, Duration::micros(500), 1e-4)
                .bits_per_second(),
            access.bits_per_second());
  // Long RTT: bound wins.
  EXPECT_LT(apps::effective_uplink(access, Duration::from_millis_f(200), 1e-3)
                .mbps_f(),
            5.0);
}

// ---------------------------------------------------------------- energy

TEST(Energy, PowerMonotoneInLoad) {
  const radio::GnbEnergyModel model{radio::GnbEnergyModel::Params{}};
  double prev = -1.0;
  for (double load : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const double watts = model.average_watts(load);
    EXPECT_GT(watts, prev);
    prev = watts;
  }
}

TEST(Energy, MicroSleepSavesAtLowLoadOnly) {
  radio::GnbEnergyModel::Params base;
  radio::GnbEnergyModel::Params sleepy = base;
  sleepy.micro_sleep = true;
  const radio::GnbEnergyModel a{base};
  const radio::GnbEnergyModel b{sleepy};
  EXPECT_LT(b.average_watts(0.05), 0.6 * a.average_watts(0.05));
  // At full load there is nothing to sleep through.
  EXPECT_NEAR(b.average_watts(1.0), a.average_watts(1.0),
              a.average_watts(1.0) * 0.02);
}

TEST(Energy, EnergyPerBitFallsWithLoad) {
  const radio::GnbEnergyModel model{radio::GnbEnergyModel::Params{}};
  // Static power amortises over more bits.
  EXPECT_GT(model.nj_per_bit(0.05), model.nj_per_bit(0.5));
  EXPECT_GT(model.nj_per_bit(0.5), model.nj_per_bit(0.95));
}

TEST(Energy, DailyKwhPlausibleForMacroCell) {
  const radio::GnbEnergyModel model{radio::GnbEnergyModel::Params{}};
  const double kwh = model.daily_kwh(0.25);
  // Macro 5G sites draw roughly 20-40 kWh/day.
  EXPECT_GT(kwh, 15.0);
  EXPECT_LT(kwh, 45.0);
}

}  // namespace
}  // namespace sixg
