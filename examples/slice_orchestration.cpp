// Section V-C walkthrough: admit the paper's application slices onto the
// topology, place network hypervisors under three strategies, and compare
// reactive vs predictive reconfiguration.

#include <cstdio>

#include "geo/gazetteer.hpp"
#include "slicing/admission.hpp"
#include "slicing/hypervisor.hpp"
#include "slicing/reconfig.hpp"
#include "topo/europe.hpp"

int main() {
  using namespace sixg;

  topo::EuropeOptions options;
  options.local_breakout = true;
  options.local_peering = true;
  const topo::EuropeTopology europe = topo::build_europe(options);

  // 1. End-to-end slice admission between the UE and the university edge.
  slicing::SliceAdmission admission{europe.net,
                                    slicing::SliceAdmission::Config{}};
  const auto specs = std::vector<slicing::SliceSpec>{
      slicing::SliceSpec::ar_gaming(1),
      slicing::SliceSpec::remote_surgery(2),
      slicing::SliceSpec::vehicle_coordination(3),
      slicing::SliceSpec::video_streaming(4),
      slicing::SliceSpec::sensor_swarm(5),
  };
  std::printf("Slice admission UE -> university edge:\n");
  for (const auto& spec : specs) {
    const auto admitted =
        admission.admit(spec, europe.mobile_ue, europe.university_probe);
    std::printf("  %-20s (%s, %s budget): %s\n", spec.name.c_str(),
                slicing::to_string(spec.type),
                spec.latency_budget.str().c_str(),
                admitted ? "admitted" : "REJECTED");
  }

  // 2. Hypervisor placement across the carrier's candidate sites.
  const auto& gaz = geo::Gazetteer::central_europe();
  std::vector<slicing::HypervisorSite> sites;
  std::uint32_t id = 0;
  for (const char* city : {"Vienna", "Graz", "Klagenfurt", "Ljubljana"}) {
    sites.push_back(slicing::HypervisorSite{
        id++, city, gaz.find(city)->position, /*capacity_slices=*/6.0});
  }
  const slicing::HypervisorPlacer placer{sites};

  std::vector<slicing::SliceEndpoint> endpoints;
  for (const auto& spec : specs) {
    endpoints.push_back(slicing::SliceEndpoint{
        spec, gaz.find("Klagenfurt")->position, 1.0});
  }
  // A second population of slices homed at Vienna (the core).
  for (auto spec : specs) {
    spec.id += 100;
    endpoints.push_back(
        slicing::SliceEndpoint{spec, gaz.find("Vienna")->position, 1.0});
  }

  std::vector<slicing::PlacementOutcome> outcomes;
  for (const auto strategy : {slicing::PlacementStrategy::kLatencyAware,
                              slicing::PlacementStrategy::kResilienceAware,
                              slicing::PlacementStrategy::kLoadBalanced}) {
    outcomes.push_back(placer.place(endpoints, strategy));
  }
  std::printf("\nHypervisor placement strategies:\n%s\n",
              slicing::HypervisorPlacer::comparison(outcomes).str().c_str());

  // 3. Reactive vs predictive reconfiguration over a diurnal day.
  std::printf("Reconfiguration policy over 24 h with load surges:\n%s",
              slicing::ReconfigStudy::comparison(
                  slicing::ReconfigStudy::Params{}).str().c_str());
  return 0;
}
