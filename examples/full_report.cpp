// Regenerates the paper's entire analysis as one markdown document:
// requirements matrix, drive-test grids, gap analysis, Table I trace and
// the Section V recommendation what-ifs.
//
// Usage: full_report [output.md]   (stdout when no file is given)

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/log.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  sixg::core::StudyReport::Options options;
  options.whatif.samples = 2000;
  const sixg::core::StudyReport report{options};
  const std::string markdown = report.render();

  if (argc > 1) {
    std::ofstream file{argv[1]};
    if (!file) {
      SIXG_ERROR("full_report") << "cannot open " << argv[1];
      return 1;
    }
    file << markdown;
    std::printf("wrote %zu bytes to %s\n", markdown.size(), argv[1]);
  } else {
    std::cout << markdown;
  }
  return 0;
}
