// Quickstart: build the paper's central-European scenario, compare wired
// and mobile latency to the university reference probe, and reproduce the
// Table I traceroute with its continental detour.

#include <cstdio>

#include "geo/grid.hpp"
#include "geo/population.hpp"
#include "measurement/ping.hpp"
#include "radio/conditions.hpp"
#include "radio/link_model.hpp"
#include "radio/profile.hpp"
#include "topo/europe.hpp"
#include "topo/traceroute.hpp"

int main() {
  using namespace sixg;

  // 1. The scenario: Klagenfurt drive-test area, carrier anchored in
  //    Vienna, university probe in sector cell E3.
  const topo::EuropeTopology europe = topo::build_europe();
  Rng rng{42};

  // 2. Wired baseline: residential host in the sector -> probe, and the
  //    Exoscale-like cloud in Vienna (the paper's [3] reports 1-11 ms and
  //    7-12 ms respectively).
  {
    const meas::PingMeasurement wired{europe.net, europe.wired_host,
                                      europe.university_probe};
    const auto result = wired.run(500, rng);
    std::printf("wired -> probe   : mean %.1f ms (min %.1f, max %.1f)\n",
                result.summary_ms.mean(), result.summary_ms.min(),
                result.summary_ms.max());
  }
  {
    const meas::PingMeasurement wired{europe.net, europe.wired_host,
                                      europe.cloud_vienna};
    const auto result = wired.run(500, rng);
    std::printf("wired -> cloud   : mean %.1f ms (min %.1f, max %.1f)\n",
                result.summary_ms.mean(), result.summary_ms.min(),
                result.summary_ms.max());
  }

  // 3. Mobile node in cell C2 behind the 5G access -> probe.
  const auto grid = geo::SectorGrid::klagenfurt_sector();
  const auto pop = geo::PopulationRaster::klagenfurt(grid);
  const auto rem = radio::RadioEnvironmentMap::klagenfurt(grid, pop);
  const radio::RadioLinkModel nsa{radio::AccessProfile::fiveg_nsa()};
  {
    const auto c2 = grid.parse_label("C2");
    const meas::PingMeasurement mobile{europe.net, europe.mobile_ue,
                                       europe.university_probe, nsa,
                                       rem.at(*c2)};
    const auto result = mobile.run(500, rng);
    std::printf("mobile(C2)->probe: mean %.1f ms (min %.1f, max %.1f)\n",
                result.summary_ms.mean(), result.summary_ms.min(),
                result.summary_ms.max());
  }

  // 4. The Table I traceroute: ten hops and a 2,500+ km detour for two
  //    endpoints less than 5 km apart.
  const topo::TracerouteResult trace =
      topo::traceroute(europe.net, europe.mobile_ue, europe.university_probe,
                       rng);
  std::printf("\nTraceroute mobile-ue -> probe (%zu hops, %.0f km):\n%s",
              trace.hop_count(), trace.total_km, trace.table().str().c_str());

  const double straight_km = geo::distance_km(
      europe.net.node(europe.mobile_ue).position,
      europe.net.node(europe.university_probe).position);
  std::printf("\nStraight-line UE->probe distance: %.1f km; routed: %.0f km\n",
              straight_km, trace.total_km);
  return 0;
}
