// The paper's Section IV-A use case: a distributed AR dodgeball game whose
// three services (video streaming, remote controller, trajectory) need the
// full perception loop inside 20 ms. Runs the same game over four network
// regimes and reports playability.

#include <cstdio>

#include "apps/ar_game.hpp"
#include "apps/protocols.hpp"
#include "geo/grid.hpp"
#include "geo/population.hpp"
#include "measurement/ping.hpp"
#include "radio/conditions.hpp"
#include "radio/link_model.hpp"
#include "radio/profile.hpp"
#include "topo/europe.hpp"

namespace {

using namespace sixg;

void play(const char* label, const apps::ArGameSession::RttSampler& rtt) {
  apps::ArGameSession::Config config;
  config.frames = 18000;  // five minutes at 60 FPS
  const apps::ArGameSession session{rtt, config};
  const auto report = session.run();
  std::printf(
      "%-34s mean frame age %6.1f ms | m2p %6.1f ms | consistent %5.1f %% | "
      "mis-registered throws %5.1f %% | %s\n",
      label, report.frame_age_ms.mean(), report.event_m2p_ms.mean(),
      report.consistent_frame_share * 100.0,
      report.mis_registration_share * 100.0,
      report.playable() ? "PLAYABLE" : "NOT PLAYABLE");
}

}  // namespace

int main() {
  using namespace sixg;

  const auto grid = geo::SectorGrid::klagenfurt_sector();
  const auto pop = geo::PopulationRaster::klagenfurt(grid);
  const auto rem = radio::RadioEnvironmentMap::klagenfurt(grid, pop);
  const auto conditions = rem.at(*grid.parse_label("C2"));

  std::printf("AR dodgeball, players in cells C2 and E3, 60 FPS, 20 ms "
              "budget:\n\n");

  // Regime 1: today's 5G through the continental detour (the measurement).
  {
    const auto europe = topo::build_europe();
    const radio::RadioLinkModel nsa{radio::AccessProfile::fiveg_nsa()};
    const meas::PingMeasurement ping{europe.net, europe.mobile_ue,
                                     europe.university_probe, nsa,
                                     conditions};
    play("5G NSA + remote breakout:",
         [&](Rng& rng) { return Duration::from_millis_f(ping.sample_ms(rng)); });
  }

  // Regime 2: 5G with local breakout and local peering (Section V-A).
  topo::EuropeOptions fixed;
  fixed.local_breakout = true;
  fixed.local_peering = true;
  const auto peered = topo::build_europe(fixed);
  {
    const radio::RadioLinkModel nsa{radio::AccessProfile::fiveg_nsa()};
    const meas::PingMeasurement ping{peered.net, peered.mobile_ue,
                                     peered.university_probe, nsa,
                                     conditions};
    play("5G NSA + local peering:",
         [&](Rng& rng) { return Duration::from_millis_f(ping.sample_ms(rng)); });
  }

  // Regime 3: 5G SA URLLC radio on the peered fabric.
  {
    const radio::RadioLinkModel sa{radio::AccessProfile::fiveg_sa_urllc()};
    const meas::PingMeasurement ping{peered.net, peered.mobile_ue,
                                     peered.university_probe, sa, conditions};
    play("5G SA URLLC + local peering:",
         [&](Rng& rng) { return Duration::from_millis_f(ping.sample_ms(rng)); });
  }

  // Regime 4: the 6G target.
  {
    const radio::RadioLinkModel sixg_radio{radio::AccessProfile::sixg()};
    const meas::PingMeasurement ping{peered.net, peered.mobile_ue,
                                     peered.university_probe, sixg_radio,
                                     conditions};
    play("6G + local peering:",
         [&](Rng& rng) { return Duration::from_millis_f(ping.sample_ms(rng)); });
  }

  // IoT protocol overhead on top (Section III-A): MQTT/AMQP/CoAP add 5-8 ms.
  std::printf("\nApplication-protocol overhead (one-way, mean):\n");
  for (const auto p :
       {apps::IotProtocol::kMqtt, apps::IotProtocol::kAmqp,
        apps::IotProtocol::kCoap, apps::IotProtocol::kRawUdp}) {
    std::printf("  %-8s %s\n", apps::to_string(p),
                apps::ProtocolOverheadModel::expected_overhead(p).str().c_str());
  }
  return 0;
}
