// Section V-B walkthrough: sweep UPF anchor placements and access
// generations, then let the dynamic selector anchor a mixed flow
// population.

#include <cstdio>

#include "fivegcore/placement.hpp"
#include "fivegcore/selector.hpp"
#include "topo/europe.hpp"

int main() {
  using namespace sixg;

  topo::EuropeOptions options;
  options.local_breakout = true;
  const topo::EuropeTopology europe = topo::build_europe(options);

  // Placement x access sweep.
  const core5g::UpfPlacementStudy study{europe,
                                        core5g::UpfPlacementStudy::Config{}};
  const auto rows = study.sweep();
  std::printf("UPF placement study (service colocated with the anchor):\n%s\n",
              core5g::UpfPlacementStudy::table(rows).str().c_str());

  // Dynamic UPF selection over a mixed flow population.
  Rng rng{2024};
  const auto flows = core5g::synthesize_flows(
      /*count=*/400, /*latency_critical_share=*/0.15,
      /*interactive_share=*/0.35, rng);

  core5g::DynamicUpfSelector selector{core5g::DynamicUpfSelector::Config{}};
  const auto assignments = selector.assign(flows);

  int at_edge = 0;
  int at_metro = 0;
  int at_cloud = 0;
  int critical_at_edge = 0;
  int critical_total = 0;
  for (const auto& a : assignments) {
    switch (a.anchor) {
      case core5g::UpfPlacement::kEdge:
        ++at_edge;
        break;
      case core5g::UpfPlacement::kMetro:
        ++at_metro;
        break;
      default:
        ++at_cloud;
        break;
    }
    if (a.flow_class == core5g::FlowClass::kLatencyCritical) {
      ++critical_total;
      if (a.anchor == core5g::UpfPlacement::kEdge) ++critical_at_edge;
    }
  }
  std::printf("Dynamic UPF selection over %zu flows:\n", assignments.size());
  std::printf("  edge: %d   metro: %d   cloud: %d\n", at_edge, at_metro,
              at_cloud);
  std::printf("  latency-critical flows anchored at the edge: %d of %d\n",
              critical_at_edge, critical_total);
  std::printf("  edge capacity left: %.1f units\n",
              selector.edge_capacity_left());
  return 0;
}
