// Reproduces the paper's Klagenfurt drive-test campaign end to end:
// builds the central-European topology, synthesises drive traces over the
// 6x7 sector grid, measures per-cell RTL through the 5G access and the
// carrier's detoured Internet path, and prints the Fig. 1/2/3 grids.
//
// Usage: measurement_campaign [seed]

#include <cstdio>
#include <cstdlib>

#include "geo/grid.hpp"
#include "geo/population.hpp"
#include "measurement/grid_campaign.hpp"
#include "netsim/parallel.hpp"
#include "radio/conditions.hpp"
#include "radio/profile.hpp"
#include "topo/europe.hpp"

int main(int argc, char** argv) {
  using namespace sixg;

  const auto grid = geo::SectorGrid::klagenfurt_sector();
  const auto population = geo::PopulationRaster::klagenfurt(grid);
  const auto rem = radio::RadioEnvironmentMap::klagenfurt(grid, population);
  const auto europe = topo::build_europe();

  meas::GridCampaign::Config config;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  const meas::GridCampaign campaign{
      grid,          population,
      rem,           europe.net,
      europe.mobile_ue, europe.university_probe,
      radio::AccessProfile::fiveg_nsa(), config};

  const netsim::ParallelRunner runner;
  const meas::GridReport report = campaign.run(runner);

  std::printf("Measurement counts per cell ('-' = not traversed):\n%s\n",
              report.count_table().str().c_str());
  std::printf("Mean round-trip latency per cell, ms (0.0 = <%u samples):\n%s\n",
              report.min_samples(), report.mean_table().str().c_str());
  std::printf("Std deviation per cell, ms:\n%s\n",
              report.stddev_table().str().c_str());

  const auto min_mean = report.min_mean();
  const auto max_mean = report.max_mean();
  const auto min_sd = report.min_stddev();
  const auto max_sd = report.max_stddev();
  std::printf("traversed cells: %d of %d, suppressed (<%u samples): %d\n",
              report.traversed_count(), grid.cell_count(),
              report.min_samples(), report.suppressed_count());
  std::printf("mean RTL range: %.1f ms (%s) .. %.1f ms (%s)\n", min_mean.value,
              min_mean.label.c_str(), max_mean.value, max_mean.label.c_str());
  std::printf("stddev range:  %.1f ms (%s) .. %.1f ms (%s)\n", min_sd.value,
              min_sd.label.c_str(), max_sd.value, max_sd.label.c_str());
  return 0;
}
