// google-benchmark microbenchmarks of the edge-AI serving hot path:
// the accelerator server's submit -> dynamic-batch dispatch -> complete
// cycle on the event kernel, the roofline service-time estimate, and a
// full ServingStudy replication. These guard the cost of the inner loop
// the batching/offload scenarios execute hundreds of thousands of times.

#include <benchmark/benchmark.h>

#include "edgeai/accelerator.hpp"
#include "edgeai/model.hpp"
#include "edgeai/serving.hpp"
#include "netsim/simulator.hpp"

namespace {

using namespace sixg;

// The full queueing cycle: N requests arrive with a fixed spacing and
// drain through dynamic batching. Args: max batch size.
void BM_AcceleratorServerCycle(benchmark::State& state) {
  const auto max_batch = std::uint32_t(state.range(0));
  constexpr std::size_t kRequests = 4096;
  for (auto _ : state) {
    netsim::Simulator sim;
    edgeai::AcceleratorServer server{
        sim, edgeai::AcceleratorProfile::edge_gpu(),
        edgeai::ModelZoo::at("det-base"),
        {.max_batch = max_batch,
         .batch_window = Duration::from_millis_f(1.0),
         .queue_capacity = kRequests}};
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
      sim.schedule_after(
          Duration::micros(std::int64_t(i) * 400), [&server, &done, i] {
            (void)server.submit(i, [&done](const auto&) { ++done; });
          });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(kRequests));
}
BENCHMARK(BM_AcceleratorServerCycle)->Arg(1)->Arg(8)->Arg(32);

void BM_ServiceTimeEstimate(benchmark::State& state) {
  const auto acc = edgeai::AcceleratorProfile::edge_gpu();
  const auto& model = edgeai::ModelZoo::at("det-base");
  std::uint32_t batch = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.service_time(model, batch));
    batch = batch % 32 + 1;
  }
}
BENCHMARK(BM_ServiceTimeEstimate);

void BM_ServingStudyReplication(benchmark::State& state) {
  for (auto _ : state) {
    edgeai::ServingStudy::Config config;
    config.arrivals_per_second = 900.0;
    config.requests = 1000;
    config.seed = 7;
    benchmark::DoNotOptimize(edgeai::ServingStudy::run(config));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_ServingStudyReplication);

}  // namespace

BENCHMARK_MAIN();
