// Section V-A: local peering optimisation. Rebuilds the scenario with a
// local-exchange peering between the carrier and the university network
// and compares the UE->probe path before and after: hops, routed
// kilometres, and RTL under 5G and wired access.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "ablation-peering"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("ablation-peering", argc, argv);
}
