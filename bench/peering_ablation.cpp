// Section V-A: local peering optimisation. Rebuilds the scenario with a
// local-exchange peering between the carrier and the university network
// and compares the UE->probe path before and after: hops, routed
// kilometres, and RTL under 5G and wired access.

#include <cstdio>

#include "bench_util.hpp"
#include "core/whatif.hpp"
#include "topo/traceroute.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section V-A", "local peering optimisation ablation");

  const core::WhatIfEngine engine;
  const auto results = engine.local_peering();

  TextTable t{{"Metric", "Before", "After", "Unit", "Factor"}};
  t.set_align(0, TextTable::Align::kLeft);
  for (const auto& r : results) {
    t.add_row({r.metric, TextTable::num(r.before, 2),
               TextTable::num(r.after, 2), r.unit,
               TextTable::num(r.improvement_factor(), 2) + "x"});
  }
  std::printf("\n%s\n", t.str().c_str());

  // Show the collapsed traceroute for the peered world.
  topo::EuropeOptions fixed;
  fixed.local_breakout = true;
  fixed.local_peering = true;
  const auto peered = topo::build_europe(fixed);
  Rng rng{17};
  const auto trace = topo::traceroute(peered.net, peered.mobile_ue,
                                      peered.university_probe, rng);
  std::printf("Traceroute with local peering:\n%s\n",
              trace.table().str().c_str());

  for (const auto& r : results) {
    if (r.metric == "UE->probe network hops")
      bench::anchor("hops after peering", r.after, "vs 10 before (Table I)");
    if (r.metric == "routed distance")
      bench::anchor("routed km after peering", r.after, "vs 2544 before");
    if (r.metric == "RTL: mobile status quo vs wired on peered fabric")
      bench::anchor("wired RTL on peered fabric (ms)", r.after, "1-11 ms [3]");
  }
  return 0;
}
