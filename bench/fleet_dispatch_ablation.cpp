// Fleet dispatch ablation: round-robin vs join-shortest-queue vs
// tier-affine over N edge GPUs plus a cloud backstop behind the WAN leg
// — how much traffic each policy leaks to the cloud and what that costs
// against the 20 ms AR budget.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "fleet-dispatch-ablation"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("fleet-dispatch-ablation", argc,
                                        argv);
}
