// Observability overhead gate: the kernel schedule+fire throughput with
// metrics+trace ENABLED must stay within SIXG_OBS_GATE_PCT (default 2%)
// of the same workload with probes disabled. This bounds the quantity
// the probes promise — "compiled in but off costs <= 2%" — from above:
//
//  * The per-event kernel path carries zero probe instructions either
//    way (counters flush once per run()/run_until() call, not per
//    event), and the EventQueue pushes/parks tallies are unconditional
//    plain members present even in SIXG_OBS_PROBES=OFF builds.
//  * A compiled-in-but-off build differs from compiled-out only by
//    not-taken `if (metrics_on())` branches at non-hot sites; the
//    enabled measurement exercises those same branches on their TAKEN
//    path plus the probe bodies, so off-overhead <= enabled-overhead.
//
// Gating enabled-vs-disabled therefore gates the off cost with margin,
// and it is measurable inside one binary (no compiled-out twin needed).
//
// Runs 5 interleaved reps per mode and compares medians; wall-clock
// noise gets 3 attempts before the gate fails. Knobs:
//   SIXG_OBS_BENCH_EVENTS  events per rep         (default 2000000)
//   SIXG_OBS_GATE_PCT      max enabled overhead % (default 2.0)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/time.hpp"
#include "netsim/simulator.hpp"
#include "obs/obs.hpp"

namespace {

using namespace sixg;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::strtod(v, nullptr);
}

/// One timed kernel workload: 64 interleaved self-rescheduling event
/// chains with staggered periods, so the binary heap and timer wheel
/// both see realistic churn. Returns seconds of wall time for `events`
/// schedule+fire pairs.
double run_workload(std::uint64_t events) {
  netsim::Simulator sim(1);
  constexpr std::uint64_t kChains = 64;
  std::uint64_t budget = events;
  struct Chain {
    netsim::Simulator* sim;
    std::uint64_t* budget;
    std::uint64_t period_ns;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      sim->schedule_after(Duration::nanos(std::int64_t(period_ns)), *this);
    }
  };
  for (std::uint64_t k = 0; k < kChains && budget > 0; ++k) {
    --budget;
    sim.schedule_after(Duration::nanos(std::int64_t(200 + 37 * k)),
                       Chain{&sim, &budget, 200 + 37 * k});
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main() {
  const std::uint64_t events = env_u64("SIXG_OBS_BENCH_EVENTS", 2000000);
  const double gate_pct = env_f64("SIXG_OBS_GATE_PCT", 2.0);
  constexpr int kReps = 5;
  constexpr int kAttempts = 3;

  if (!obs::kProbesCompiled) {
    std::printf("obs_overhead: probes compiled out; nothing to gate\n");
    return 0;
  }
  auto& rt = obs::Runtime::instance();
  obs::Config enabled_cfg;
  enabled_cfg.metrics = true;
  enabled_cfg.trace = true;

  // Warm-up (page faults, allocator steady state) outside the timings.
  (void)run_workload(events / 4 + 1);

  double overhead_pct = 0.0;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    std::vector<double> off;
    std::vector<double> on;
    for (int rep = 0; rep < kReps; ++rep) {
      rt.disable();
      off.push_back(run_workload(events));
      rt.configure(enabled_cfg);
      rt.begin_scenario("obs-overhead");
      on.push_back(run_workload(events));
      rt.end_scenario();
      rt.disable();
    }
    const double off_s = median(off);
    const double on_s = median(on);
    overhead_pct = (on_s / off_s - 1.0) * 100.0;
    std::printf(
        "obs_overhead: attempt %d: %llu events, disabled %.1f Mev/s, "
        "enabled %.1f Mev/s, overhead %+.2f%% (gate %.2f%%)\n",
        attempt, static_cast<unsigned long long>(events),
        double(events) / off_s / 1e6, double(events) / on_s / 1e6,
        overhead_pct, gate_pct);
    if (overhead_pct <= gate_pct) {
      std::printf("obs_overhead: PASS\n");
      return 0;
    }
  }
  std::printf("obs_overhead: FAIL — enabled probes cost %.2f%% > %.2f%%\n",
              overhead_pct, gate_pct);
  return 1;
}
