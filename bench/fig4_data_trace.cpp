// Figure 4: "Data Trace of Local Service Request".
// Regenerates the geographic route of the Table I request: the detour
// Klagenfurt -> Vienna -> Prague -> Bucharest -> Vienna -> Klagenfurt
// totalling ~2,500 km for a pair of endpoints 2 km apart.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "geo/gazetteer.hpp"
#include "topo/traceroute.hpp"

namespace {
/// Nearest gazetteer city to a position (the "map pin" of Figure 4).
std::string nearest_city(const sixg::geo::LatLon& pos) {
  const auto& gaz = sixg::geo::Gazetteer::central_europe();
  std::string best = "?";
  double best_km = 1e18;
  for (const auto& city : gaz.cities()) {
    const double d = sixg::geo::distance_km(pos, city.position);
    if (d < best_km) {
      best_km = d;
      best = city.name;
    }
  }
  return best;
}
}  // namespace

int main() {
  using namespace sixg;
  bench::banner("Figure 4", "geographic data trace of the local request");

  const core::KlagenfurtStudy study;
  const auto& europe = study.europe();
  const auto path =
      europe.net.find_path(europe.mobile_ue, europe.university_probe);

  TextTable t{{"Leg", "From", "To", "City", "Leg km", "Cum. km"}};
  t.set_align(1, TextTable::Align::kLeft);
  t.set_align(2, TextTable::Align::kLeft);
  t.set_align(3, TextTable::Align::kLeft);
  double cum = 0.0;
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const auto& link = europe.net.link(path.links[i]);
    const auto& from = europe.net.node(path.nodes[i]);
    const auto& to = europe.net.node(path.nodes[i + 1]);
    cum += link.length_km;
    t.add_row({TextTable::integer(std::int64_t(i + 1)), from.name, to.name,
               nearest_city(to.position), TextTable::num(link.length_km, 0),
               TextTable::num(cum, 0)});
  }
  std::printf("\n%s\n", t.str().c_str());

  // The Vienna->Prague->Bucharest->Vienna loop called out in the paper.
  const auto& gaz = geo::Gazetteer::central_europe();
  const double loop_km = gaz.distance_km("Vienna", "Prague") +
                         gaz.distance_km("Prague", "Bucharest") +
                         gaz.distance_km("Bucharest", "Vienna");

  bench::anchor("total routed distance (km)", path.distance_km, "2544 km");
  bench::anchor("Vienna-Prague-Bucharest-Vienna loop (km)", loop_km,
                "the detour Fig. 4 shows");
  bench::anchor("deterministic one-way floor (ms)", path.base_one_way.ms(),
                "majority of the 65 ms RTL");
  return 0;
}
