// Figure 4: "Data Trace of Local Service Request".
// Regenerates the geographic route of the Table I request: the detour
// Klagenfurt -> Vienna -> Prague -> Bucharest -> Vienna -> Klagenfurt
// totalling ~2,500 km for a pair of endpoints 2 km apart.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "fig4"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("fig4", argc, argv);
}
