// Section V-B SmartNIC anchor: Jain et al. [32]/[33] report that moving
// the UPF pipeline onto a SmartNIC (bypassing host memory and PCIe)
// doubles throughput and cuts packet processing latency by 3.75x. We
// regenerate both factors and the latency distributions, plus the rule
// table scaling behaviour underneath.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fivegcore/upf.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace {

using namespace sixg;

struct DatapathRow {
  const char* name;
  core5g::UpfDatapath datapath;
};

}  // namespace

int main() {
  using namespace sixg;
  bench::banner("Section V-B (SmartNIC)",
                "host vs SmartNIC UPF datapath comparison");

  const DatapathRow datapaths[] = {
      {"host CPU", core5g::UpfDatapath::kHostCpu},
      {"SmartNIC", core5g::UpfDatapath::kSmartNic},
  };

  TextTable t{{"Datapath", "Mean pkt latency (us)", "p50 (us)", "p99 (us)",
               "Throughput (Mpps)"}};
  t.set_align(0, TextTable::Align::kLeft);

  double host_mean = 0.0;
  double nic_mean = 0.0;
  double host_tput = 0.0;
  double nic_tput = 0.0;
  for (const auto& row : datapaths) {
    core5g::Upf upf{core5g::Upf::Config{.name = row.name,
                                        .datapath = row.datapath}};
    (void)upf.rules().add_rule(core5g::PdrRule{1, 42, 1, 0, 0});
    Rng rng{99};
    stats::Summary lat_us;
    stats::QuantileSample q;
    for (int i = 0; i < 100000; ++i) {
      const double us = upf.sample_packet_latency(42, rng).us();
      lat_us.add(us);
      q.add(us);
    }
    t.add_row({row.name, TextTable::num(lat_us.mean(), 2),
               TextTable::num(q.quantile(0.5), 2),
               TextTable::num(q.quantile(0.99), 2),
               TextTable::num(upf.max_throughput_mpps(), 1)});
    if (row.datapath == core5g::UpfDatapath::kHostCpu) {
      host_mean = lat_us.mean();
      host_tput = upf.max_throughput_mpps();
    } else {
      nic_mean = lat_us.mean();
      nic_tput = upf.max_throughput_mpps();
    }
  }
  std::printf("\n%s\n", t.str().c_str());

  bench::anchor("latency reduction factor", host_mean / nic_mean, "3.75x [33]");
  bench::anchor("throughput factor", nic_tput / host_tput, "2x [32]");

  // Rule-table scaling: lookup cost vs installed rules (linear scan).
  std::printf("\nLinear-scan lookup cost vs table size (flow at the tail):\n");
  for (const std::size_t rules : {64u, 256u, 1024u, 4096u}) {
    core5g::RuleTable table{core5g::RuleTable::Mode::kLinearScan};
    for (std::size_t i = 0; i < rules; ++i)
      (void)table.add_rule(
          core5g::PdrRule{std::uint32_t(i), 1000 + i, 0, int(i), 0});
    const auto outcome = table.lookup(1000 + rules - 1);
    std::printf("  %5zu rules -> %7.2f us\n", rules,
                outcome.latency.us());
  }
  return 0;
}
