// Section V-B SmartNIC anchor: Jain et al. [32]/[33] report that moving
// the UPF pipeline onto a SmartNIC (bypassing host memory and PCIe)
// doubles throughput and cuts packet processing latency by 3.75x. We
// regenerate both factors and the latency distributions, plus the rule
// table scaling behaviour underneath.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "smartnic-upf"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("smartnic-upf", argc, argv);
}
