// Section VI edge AI: the dynamic-batching trade-off on the edge
// accelerator — batch window and max batch size against latency,
// throughput and energy per inference.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "batching-ablation"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("batching-ablation", argc, argv);
}
