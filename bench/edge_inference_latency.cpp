// Section VI edge AI: inference serving for one model across the
// network regimes — the detoured cloud status quo, edge placement with
// and without local peering, the V-B access fix and the 6G target —
// plus the inference-backed AR frame loop.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "edge-inference-latency"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("edge-inference-latency", argc, argv);
}
