// google-benchmark suite for the discrete-event kernel itself: the
// schedule -> fire hot path, periodic-timer churn, and a mixed workload
// shaped like the serving scenarios. This is the denominator of every
// campaign: kernel throughput bounds how many replications and grid
// points a sweep can afford. `scripts/bench_to_json` turns this suite's
// output into BENCH_kernel.json, comparing against the committed
// pre-refactor baseline (bench/kernel_baseline.json).
//
// Only the pre-refactor Simulator API surface is used (schedule_at /
// schedule_after / schedule_periodic / run / run_until), so the same
// source measured the binary-heap + std::function kernel and measures
// the arena kernel today.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/rng.hpp"
#include "netsim/simulator.hpp"

namespace {

using namespace sixg;
using namespace sixg::literals;

// Schedule N one-shot events with short modular delays, then drain them.
// The core schedule+fire cycle with a mostly-sorted arrival pattern, at
// the pending-set sizes the campaign scenarios actually reach (a
// ServingStudy replication holds thousands of in-flight events; grid
// sweeps more). This family is the headline metric of
// BENCH_kernel.json.
void BM_ScheduleFire(benchmark::State& state) {
  const auto events = std::size_t(state.range(0));
  for (auto _ : state) {
    netsim::Simulator sim;
    std::uint64_t counter = 0;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_after(Duration::micros(std::int64_t(i % 997)),
                         [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(events));
}
BENCHMARK(BM_ScheduleFire)->Arg(10000)->Arg(100000)->Arg(1000000);

// The same cycle at a trivially small scale, reported separately: with
// ~1k pending events any queue is shallow and per-event cost is
// dominated by closure construction and dispatch, not ordering.
void BM_ScheduleFireSmall(benchmark::State& state) {
  constexpr std::size_t kEvents = 1000;
  for (auto _ : state) {
    netsim::Simulator sim;
    std::uint64_t counter = 0;
    for (std::size_t i = 0; i < kEvents; ++i) {
      sim.schedule_after(Duration::micros(std::int64_t(i % 997)),
                         [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(kEvents));
}
BENCHMARK(BM_ScheduleFireSmall);

// Same cycle with uniformly random delays: adversarial heap ordering, no
// help from arrival locality.
void BM_ScheduleFireRandom(benchmark::State& state) {
  const auto events = std::size_t(state.range(0));
  for (auto _ : state) {
    netsim::Simulator sim;
    Rng rng{42};
    std::uint64_t counter = 0;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_after(Duration::nanos(std::int64_t(rng.uniform_int(
                             10'000'000))),
                         [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(events));
}
BENCHMARK(BM_ScheduleFireRandom)->Arg(10000)->Arg(100000);

// Interleaved schedule/fire: every fired event schedules a successor, a
// ladder of nested timers like protocol timeouts. Queue stays small; the
// cost is pure per-event overhead (allocation, dispatch).
void BM_NestedLadder(benchmark::State& state) {
  const auto events = std::uint64_t(state.range(0));
  for (auto _ : state) {
    netsim::Simulator sim;
    std::uint64_t remaining = events;
    // Four independent ladders so the queue holds a handful of events.
    for (int lane = 0; lane < 4; ++lane) {
      struct Step {
        netsim::Simulator* sim;
        std::uint64_t* remaining;
        void operator()() const {
          if (*remaining == 0) return;
          --*remaining;
          sim->schedule_after(Duration::micros(13), Step{*this});
        }
      };
      sim.schedule_after(Duration::micros(lane), Step{&sim, &remaining});
    }
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(events));
}
BENCHMARK(BM_NestedLadder)->Arg(100000);

// Periodic-timer churn: K timers with co-prime periods firing across a
// horizon. On the pre-refactor kernel each firing re-armed through a
// shared_ptr trampoline; this measures exactly that path.
void BM_PeriodicChurn(benchmark::State& state) {
  const auto timers = int(state.range(0));
  std::uint64_t fired_total = 0;
  for (auto _ : state) {
    netsim::Simulator sim;
    std::uint64_t fired = 0;
    for (int k = 0; k < timers; ++k) {
      sim.schedule_periodic(Duration::micros(50 + 7 * k),
                            [&fired] { ++fired; });
    }
    sim.run_until(TimePoint{} + 50_ms);
    benchmark::DoNotOptimize(fired);
    fired_total += fired;
  }
  state.SetItemsProcessed(std::int64_t(fired_total));
}
BENCHMARK(BM_PeriodicChurn)->Arg(16)->Arg(256);

// Arm-and-cancel: periodic timers cancelled mid-flight, plus a fresh
// timer armed per cancellation. Exercises handle lifetime management.
void BM_PeriodicCancelChurn(benchmark::State& state) {
  constexpr int kTimers = 64;
  std::uint64_t fired_total = 0;
  for (auto _ : state) {
    netsim::Simulator sim;
    std::uint64_t fired = 0;
    std::vector<netsim::Simulator::PeriodicHandle> handles;
    handles.reserve(kTimers);
    for (int k = 0; k < kTimers; ++k) {
      handles.push_back(
          sim.schedule_periodic(Duration::micros(40 + k), [&fired] {
            ++fired;
          }));
    }
    // Cancel every timer partway, then re-arm a replacement.
    sim.schedule_after(10_ms, [&] {
      for (auto& h : handles) h.cancel();
      for (int k = 0; k < kTimers; ++k) {
        sim.schedule_periodic(Duration::micros(60 + k), [&fired] { ++fired; });
      }
    });
    sim.run_until(TimePoint{} + 20_ms);
    benchmark::DoNotOptimize(fired);
    fired_total += fired;
  }
  state.SetItemsProcessed(std::int64_t(fired_total));
}
BENCHMARK(BM_PeriodicCancelChurn);

// Mixed workload shaped like the serving studies: a few periodic pacers,
// a stream of one-shot arrivals, and per-arrival nested completions.
void BM_MixedWorkload(benchmark::State& state) {
  const auto arrivals = std::size_t(state.range(0));
  for (auto _ : state) {
    netsim::Simulator sim;
    std::uint64_t done = 0;
    for (int k = 0; k < 8; ++k) {
      sim.schedule_periodic(Duration::micros(200 + 31 * k), [&done] {
        ++done;
      });
    }
    for (std::size_t i = 0; i < arrivals; ++i) {
      sim.schedule_after(
          Duration::micros(std::int64_t(i) * 3), [&sim, &done] {
            sim.schedule_after(Duration::micros(120), [&sim, &done] {
              sim.schedule_after(Duration::micros(80), [&done] { ++done; });
            });
          });
    }
    sim.run_until(TimePoint{} + Duration::micros(std::int64_t(arrivals) * 3 +
                                                 1000));
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(arrivals) * 3);
}
BENCHMARK(BM_MixedWorkload)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
