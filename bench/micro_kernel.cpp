// google-benchmark microbenchmarks of the simulator substrate itself:
// event-queue throughput, policy routing, latency sampling, rule-table
// lookups. These guard the performance envelope that makes the
// campaign-scale studies (hundreds of thousands of samples) cheap.

#include <benchmark/benchmark.h>

#include "fivegcore/rules.hpp"
#include "geo/coords.hpp"
#include "netsim/simulator.hpp"
#include "radio/link_model.hpp"
#include "radio/profile.hpp"
#include "stats/distributions.hpp"
#include "topo/backbone.hpp"
#include "topo/europe.hpp"

namespace {

using namespace sixg;

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto events = std::size_t(state.range(0));
  for (auto _ : state) {
    netsim::Simulator sim;
    std::uint64_t counter = 0;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_after(Duration::micros(std::int64_t(i % 997)),
                         [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(events));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PolicyRouting(benchmark::State& state) {
  const auto europe = topo::build_europe();
  for (auto _ : state) {
    const auto path = europe.net.find_path(europe.mobile_ue,
                                           europe.university_probe);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_PolicyRouting);

void BM_BackboneRouting(benchmark::State& state) {
  const auto backbone = topo::build_backbone(int(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& hosts = backbone.stub_hosts;
    const auto path = backbone.net.find_path(hosts[i % hosts.size()],
                                             hosts[(i * 7 + 3) % hosts.size()]);
    benchmark::DoNotOptimize(path);
    ++i;
  }
}
BENCHMARK(BM_BackboneRouting)->Arg(1)->Arg(4);

void BM_AsRouteComputation(benchmark::State& state) {
  const auto europe = topo::build_europe();
  for (auto _ : state) {
    const auto routes = europe.net.compute_as_routes_to(europe.as_uninet);
    benchmark::DoNotOptimize(routes);
  }
}
BENCHMARK(BM_AsRouteComputation);

void BM_PathRttSample(benchmark::State& state) {
  const auto europe = topo::build_europe();
  const auto path =
      europe.net.find_path(europe.mobile_ue, europe.university_probe);
  Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(europe.net.sample_rtt(path, rng));
  }
}
BENCHMARK(BM_PathRttSample);

void BM_RadioRttSample(benchmark::State& state) {
  const radio::RadioLinkModel model{radio::AccessProfile::fiveg_nsa()};
  const radio::CellConditions conditions{.load = 0.5,
                                         .quality = 0.7,
                                         .bler = 0.1,
                                         .spike_rate = 0.02};
  Rng rng{2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample_rtt(conditions, rng));
  }
}
BENCHMARK(BM_RadioRttSample);

void BM_RuleLookupLinear(benchmark::State& state) {
  core5g::RuleTable table{core5g::RuleTable::Mode::kLinearScan};
  const auto rules = std::uint32_t(state.range(0));
  for (std::uint32_t i = 0; i < rules; ++i)
    (void)table.add_rule(core5g::PdrRule{i, 1000 + i, i / 4, int(i), 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(1000 + rules - 1));
  }
}
BENCHMARK(BM_RuleLookupLinear)->Arg(64)->Arg(1024);

void BM_RuleLookupContextAware(benchmark::State& state) {
  core5g::RuleTable table{core5g::RuleTable::Mode::kContextAware};
  const auto rules = std::uint32_t(state.range(0));
  for (std::uint32_t i = 0; i < rules; ++i)
    (void)table.add_rule(core5g::PdrRule{i, 1000 + i, i / 4, int(i), 0});
  table.prioritise_flow(1000 + rules - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(1000 + rules - 1));
  }
}
BENCHMARK(BM_RuleLookupContextAware)->Arg(64)->Arg(1024);

void BM_LognormalSample(benchmark::State& state) {
  const stats::Lognormal dist = stats::Lognormal::from_median(10.0, 0.4);
  Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
}
BENCHMARK(BM_LognormalSample);

void BM_HaversineDistance(benchmark::State& state) {
  const geo::LatLon a{46.62, 14.31};
  const geo::LatLon b{48.21, 16.37};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::distance_km(a, b));
  }
}
BENCHMARK(BM_HaversineDistance);

}  // namespace

BENCHMARK_MAIN();
