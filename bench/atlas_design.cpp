// Measurement-design ablation: how much probing does the campaign need?
// The paper's per-cell counts vary widely (traffic-flow constrained) and
// cells under ten samples are suppressed. This bench quantifies the
// design question behind that rule: how does the confidence interval of
// a cell's mean RTL shrink with sample count, and what campaign duration
// does a target precision imply at a given cadence?

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "atlas-design"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("atlas-design", argc, argv);
}
