// Measurement-design ablation: how much probing does the campaign need?
// The paper's per-cell counts vary widely (traffic-flow constrained) and
// cells under ten samples are suppressed. This bench quantifies the
// design question behind that rule: how does the confidence interval of
// a cell's mean RTL shrink with sample count, and what campaign duration
// does a target precision imply at a given cadence?

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "measurement/atlas.hpp"
#include "measurement/ping.hpp"
#include "radio/link_model.hpp"
#include "stats/bootstrap.hpp"

int main() {
  using namespace sixg;
  bench::banner("Methodology", "campaign precision vs sample count");

  const core::KlagenfurtStudy study;
  const auto& europe = study.europe();
  const radio::RadioLinkModel nsa{study.access_profile()};

  // Precision of the mean estimate vs n, for a calm and a bursty cell.
  TextTable t{{"Cell", "n", "mean (ms)", "95% CI width (ms)"}};
  t.set_align(0, TextTable::Align::kLeft);
  for (const char* label : {"B3", "E5"}) {
    const auto conditions = study.rem().at(*study.grid().parse_label(label));
    const meas::PingMeasurement ping{europe.net, europe.mobile_ue,
                                     europe.university_probe, nsa,
                                     conditions};
    for (const std::uint32_t n : {10u, 30u, 100u, 300u, 1000u}) {
      Rng rng{derive_seed(0xa75, n)};
      std::vector<double> sample(n);
      for (auto& x : sample) x = ping.sample_ms(rng);
      const auto ci = stats::bootstrap_mean_ci(sample, 0.95, 1500, 7);
      double mean = 0;
      for (double x : sample) mean += x;
      mean /= double(n);
      t.add_row({label, TextTable::integer(n), TextTable::num(mean, 1),
                 TextTable::num(ci.width(), 2)});
    }
  }
  std::printf("\n%s\n", t.str().c_str());

  // DES fleet: same question from the scheduling side — what does one
  // hour of a 15 s cadence actually collect, with realistic loss?
  meas::AtlasFleet fleet{europe.net};
  const auto probe = fleet.add_mobile_probe(
      "drive-probe", europe.mobile_ue, nsa,
      study.rem().at(*study.grid().parse_label("C2")));
  meas::AtlasFleet::ScheduleOptions options;
  options.period = Duration::seconds(15);
  options.loss_rate = 0.02;
  fleet.schedule_ping(probe, europe.university_probe, options);
  const auto results = fleet.run(Duration::seconds(3600), 99);
  std::printf("One hour at 15 s cadence: %llu scheduled, %llu lost, "
              "mean %.1f ms (sd %.1f)\n",
              static_cast<unsigned long long>(results[0].scheduled),
              static_cast<unsigned long long>(results[0].lost),
              results[0].rtt_ms.mean(), results[0].rtt_ms.stddev());

  bench::anchor("samples per cell-hour at 15 s", double(results[0].scheduled),
                "why <10-sample cells exist (short dwells)");
  bench::anchor("suppression threshold", 10.0,
                "paper: cells with <10 measurements read 0.0");
  return 0;
}
