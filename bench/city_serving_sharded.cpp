// North-star sharded fleet serving: the city split into pods, one
// conservative-window timeline per pod (window = the inter-pod
// compiled-path latency floor), 10 % cross-pod traffic through the
// barrier mailboxes — SLO attainment and worker-count byte-invariance
// as the city grows.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "city-serving-sharded"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("city-serving-sharded", argc, argv);
}
