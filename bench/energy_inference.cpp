// Section VI edge AI: per-request inference energy accounting — what
// the device battery and the serving accelerator pay per tier, under
// the measured 5G access and the 6G target.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "energy-inference"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("energy-inference", argc, argv);
}
