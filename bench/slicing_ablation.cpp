// Section V-C (slicing): end-to-end network slicing studies — hypervisor
// placement objectives (latency [41] / resilience [42] / load [43]),
// reactive vs predictive reconfiguration, and admission control of the
// paper's application slices with and without the local-peering fix.

#include <cstdio>

#include "bench_util.hpp"
#include "geo/gazetteer.hpp"
#include "slicing/admission.hpp"
#include "slicing/hypervisor.hpp"
#include "slicing/reconfig.hpp"
#include "topo/europe.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section V-C (slicing)", "hypervisor placement, "
                "reconfiguration policy, slice admission");

  // --- hypervisor placement ----------------------------------------------
  const auto& gaz = geo::Gazetteer::central_europe();
  std::vector<slicing::HypervisorSite> sites;
  std::uint32_t id = 0;
  for (const char* city : {"Vienna", "Graz", "Ljubljana"}) {
    sites.push_back(slicing::HypervisorSite{id++, city,
                                            gaz.find(city)->position, 8.0});
  }
  const slicing::HypervisorPlacer placer{sites};

  std::vector<slicing::SliceEndpoint> endpoints;
  std::uint32_t slice_id = 0;
  for (const char* home : {"Klagenfurt", "Zagreb", "Bratislava", "Munich"}) {
    for (const auto& spec :
         {slicing::SliceSpec::ar_gaming(slice_id + 1),
          slicing::SliceSpec::remote_surgery(slice_id + 2),
          slicing::SliceSpec::video_streaming(slice_id + 3)}) {
      endpoints.push_back(
          slicing::SliceEndpoint{spec, gaz.find(home)->position, 1.0});
    }
    slice_id += 10;
  }

  std::vector<slicing::PlacementOutcome> outcomes;
  for (const auto strategy : {slicing::PlacementStrategy::kLatencyAware,
                              slicing::PlacementStrategy::kResilienceAware,
                              slicing::PlacementStrategy::kLoadBalanced}) {
    outcomes.push_back(placer.place(endpoints, strategy));
  }
  std::printf("\nHypervisor placement (%zu slices, %zu candidate sites):\n%s\n",
              endpoints.size(), sites.size(),
              slicing::HypervisorPlacer::comparison(outcomes).str().c_str());
  bench::anchor("latency-aware worst ctrl RTT (ms)",
                outcomes[0].worst_control_rtt_ms, "latency objective [41]");
  bench::anchor("resilience failover coverage (%)",
                outcomes[1].failover_coverage * 100.0,
                "resilience objective [42]");

  // --- reactive vs predictive -----------------------------------------------
  const slicing::ReconfigStudy::Params params;
  std::printf("Reconfiguration policy over a 24 h diurnal day with random "
              "surges:\n%s\n",
              slicing::ReconfigStudy::comparison(params).str().c_str());
  const auto reactive =
      slicing::ReconfigStudy::run(slicing::ReconfigPolicy::kReactive, params);
  const auto predictive = slicing::ReconfigStudy::run(
      slicing::ReconfigPolicy::kPredictive, params);
  bench::anchor("violation steps reactive", double(reactive.violations),
                "reactive operation (Sec. V-C)");
  bench::anchor("violation steps predictive", double(predictive.violations),
                "predictive goal (Sec. V-C)");

  // --- admission: URLLC slices need the short path -------------------------
  const auto admit_study = [&](bool peered) {
    topo::EuropeOptions options;
    options.local_breakout = peered;
    options.local_peering = peered;
    const auto world = topo::build_europe(options);
    slicing::SliceAdmission admission{world.net,
                                      slicing::SliceAdmission::Config{}};
    int admitted = 0;
    const std::vector<slicing::SliceSpec> specs{
        slicing::SliceSpec::ar_gaming(1), slicing::SliceSpec::remote_surgery(2),
        slicing::SliceSpec::vehicle_coordination(3),
        slicing::SliceSpec::video_streaming(4),
        slicing::SliceSpec::sensor_swarm(5)};
    for (const auto& spec : specs) {
      if (admission.admit(spec, world.mobile_ue, world.university_probe))
        ++admitted;
    }
    return admitted;
  };
  const int without = admit_study(false);
  const int with = admit_study(true);
  std::printf("Slice admission UE->university (5 requested):\n");
  std::printf("  over the detour:        %d admitted (URLLC budgets fail on "
              "the path floor)\n", without);
  std::printf("  with local peering:     %d admitted\n", with);
  bench::anchor("URLLC admissible only with local path", double(with - without),
                "slicing needs the V-A/V-B fixes");
  return 0;
}
