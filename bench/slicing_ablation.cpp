// Section V-C (slicing): end-to-end network slicing studies — hypervisor
// placement objectives (latency [41] / resilience [42] / load [43]),
// reactive vs predictive reconfiguration, and admission control of the
// paper's application slices with and without the local-peering fix.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "ablation-slicing"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("ablation-slicing", argc, argv);
}
