// Figure 2: "Urban Mean Round-trip Time Latency".
// Regenerates the per-cell mean RTL grid of the Klagenfurt drive test:
// mobile nodes behind 5G NSA pinging the university reference probe over
// the carrier's detoured Internet path.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "fig2"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("fig2", argc, argv);
}
