// Figure 2: "Urban Mean Round-trip Time Latency".
// Regenerates the per-cell mean RTL grid of the Klagenfurt drive test:
// mobile nodes behind 5G NSA pinging the university reference probe over
// the carrier's detoured Internet path.

#include <cstdio>

#include "bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace sixg;
  bench::banner("Figure 2", "urban mean round-trip latency per cell (ms)");

  const core::KlagenfurtStudy study;
  const auto report = study.run_campaign();

  std::printf("\n%s", report.mean_table().str().c_str());
  std::printf("(0.0 = traversed but fewer than %u measurements; '-' = not "
              "traversed)\n\n",
              report.min_samples());

  const auto min_mean = report.min_mean();
  const auto max_mean = report.max_mean();
  const auto wired = study.wired_baseline();
  const double ratio = report.mean_of_cell_means().mean() / wired.mean();

  bench::anchor(("min cell mean @ " + min_mean.label).c_str(), min_mean.value,
                "61 ms @ C1");
  bench::anchor(("max cell mean @ " + max_mean.label).c_str(), max_mean.value,
                "110 ms @ C3");
  bench::anchor("wired baseline mean (ms)", wired.mean(), "1-11 ms [3]");
  bench::anchor("mobile/wired mean ratio", ratio, "~7x");
  return 0;
}
