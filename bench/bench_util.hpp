#pragma once

#include <cstdio>

#include "common/log.hpp"
#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace sixg::bench {

/// Shared entry point of the reproduction binaries: every bench is a thin
/// shim over one registered scenario, so a figure regenerates identically
/// whether launched standalone or through `sixg_run --run <name>`. The
/// shims take no flags — anything on the command line is rejected rather
/// than silently ignored (use sixg_run for --seed/--threads).
inline int run_scenario_main(const char* name, int argc = 1,
                             char** argv = nullptr) {
  if (argc > 1) {
    SIXG_ERROR("bench") << (argv != nullptr ? argv[0] : "bench")
                        << ": takes no arguments; use `sixg_run --run "
                        << name << "` for --seed/--threads";
    return 2;
  }
  auto& registry = core::ScenarioRegistry::global();
  core::register_paper_scenarios(registry);
  const core::Scenario* scenario = registry.find(name);
  if (scenario == nullptr) {
    SIXG_ERROR("bench") << "scenario '" << name << "' is not registered";
    return 1;
  }
  const auto result = scenario->run(core::RunContext{});
  std::fputs(core::render(*scenario, result).c_str(), stdout);
  return 0;
}

}  // namespace sixg::bench
