#pragma once

#include <cstdio>

namespace sixg::bench {

/// Shared header so every reproduction binary states what it regenerates
/// and which paper artefact it corresponds to.
inline void banner(const char* artefact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artefact, description);
  std::printf("==============================================================\n");
}

/// One paper-vs-measured line for EXPERIMENTS.md-style accounting.
inline void anchor(const char* what, double measured, const char* paper) {
  std::printf("  anchor: %-42s measured %10.2f | paper %s\n", what, measured,
              paper);
}

}  // namespace sixg::bench
