#pragma once

#include <cstdio>

#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace sixg::bench {

/// Shared entry point of the reproduction binaries: every bench is a thin
/// shim over one registered scenario, so a figure regenerates identically
/// whether launched standalone or through `sixg_run --run <name>`. The
/// shims take no flags — anything on the command line is rejected rather
/// than silently ignored (use sixg_run for --seed/--threads).
inline int run_scenario_main(const char* name, int argc = 1,
                             char** argv = nullptr) {
  if (argc > 1) {
    std::fprintf(stderr,
                 "%s: takes no arguments; use `sixg_run --run %s` for "
                 "--seed/--threads\n",
                 argv != nullptr ? argv[0] : "bench", name);
    return 2;
  }
  auto& registry = core::ScenarioRegistry::global();
  core::register_paper_scenarios(registry);
  const core::Scenario* scenario = registry.find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "scenario '%s' is not registered\n", name);
    return 1;
  }
  const auto result = scenario->run(core::RunContext{});
  std::fputs(core::render(*scenario, result).c_str(), stdout);
  return 0;
}

}  // namespace sixg::bench
