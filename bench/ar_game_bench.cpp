// Section IV-A use case across network regimes: the AR dodgeball game's
// playability under the measured 5G deployment, each Section V fix, and
// the 6G target — tying the measurement campaign to the application
// requirement it violates.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "ar-game"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("ar-game", argc, argv);
}
