// Section IV-A use case across network regimes: the AR dodgeball game's
// playability under the measured 5G deployment, each Section V fix, and
// the 6G target — tying the measurement campaign to the application
// requirement it violates.

#include <cstdio>

#include "apps/ar_game.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "measurement/ping.hpp"
#include "radio/link_model.hpp"

namespace {

using namespace sixg;

apps::ArGameSession::Report play(const topo::EuropeTopology& world,
                                 const radio::AccessProfile& profile,
                                 const radio::CellConditions& conditions) {
  const radio::RadioLinkModel radio_model{profile};
  const meas::PingMeasurement ping{world.net, world.mobile_ue,
                                   world.university_probe, radio_model,
                                   conditions};
  apps::ArGameSession::Config config;
  config.frames = 18000;
  const apps::ArGameSession session{
      [&](Rng& rng) { return Duration::from_millis_f(ping.sample_ms(rng)); },
      config};
  return session.run();
}

}  // namespace

int main() {
  using namespace sixg;
  bench::banner("Section IV-A", "AR game playability across regimes");

  const core::KlagenfurtStudy study;
  const auto conditions = study.rem().at(*study.grid().parse_label("C2"));

  topo::EuropeOptions fixed;
  fixed.local_breakout = true;
  fixed.local_peering = true;
  const auto status_quo = topo::build_europe();
  const auto peered = topo::build_europe(fixed);

  struct Row {
    const char* regime;
    const topo::EuropeTopology* world;
    radio::AccessProfile profile;
  };
  const Row rows[] = {
      {"5G NSA, remote breakout (measured)", &status_quo,
       radio::AccessProfile::fiveg_nsa()},
      {"5G NSA + local peering (V-A)", &peered,
       radio::AccessProfile::fiveg_nsa()},
      {"5G SA URLLC + local peering (V-B)", &peered,
       radio::AccessProfile::fiveg_sa_urllc()},
      {"6G target + local peering", &peered, radio::AccessProfile::sixg()},
  };

  TextTable t{{"Regime", "Mean m2p (ms)", "Consistent frames",
               "Mis-registered throws", "Verdict"}};
  t.set_align(0, TextTable::Align::kLeft);
  double consistent_6g = 0.0;
  double consistent_nsa = 0.0;
  for (const Row& row : rows) {
    const auto report = play(*row.world, row.profile, conditions);
    t.add_row({row.regime, TextTable::num(report.event_m2p_ms.mean(), 1),
               TextTable::num(report.consistent_frame_share * 100.0, 1) + " %",
               TextTable::num(report.mis_registration_share * 100.0, 1) + " %",
               report.playable() ? "playable" : "not playable"});
    if (row.profile.name == "6G")
      consistent_6g = report.consistent_frame_share;
    if (row.world == &status_quo)
      consistent_nsa = report.consistent_frame_share;
  }
  std::printf("\n%s\n", t.str().c_str());

  bench::anchor("consistent frames, measured 5G (%)", consistent_nsa * 100.0,
                "0 % (61 ms >> 20 ms budget)");
  bench::anchor("consistent frames, 6G target (%)", consistent_6g * 100.0,
                "~100 % (enables the use case)");
  return 0;
}
