// google-benchmark suite gating the cost of failure-awareness in the
// fleet serving engine. The headline benchmark, BM_FleetZeroFault, is the
// zero-fault serving hot path (no fault plan, resilience defaults all
// off): `scripts/bench_to_json` compares it against the committed
// bench/faults_baseline.json — a capture of the SAME workload built from
// the tree immediately before the fault subsystem landed — and the
// acceptance bar is a speedup within noise of 1.0 (≤ 2% regression).
//
// The workload constants are frozen: det-base across a 4-edge + 2-cloud
// fleet behind synthetic access hops, join-shortest-queue, 200k requests
// at 0.8x fleet capacity. Small enough to iterate, large enough that the
// per-request path dominates setup.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "edgeai/fleet.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace sixg;

edgeai::FleetStudy::DelaySampler synthetic_hop() {
  // Shifted-exponential one-way delay (0.5 ms floor, 1.5 ms mean): the
  // shape of a compiled wired path without the topo construction cost.
  const stats::ShiftedExponential hop{0.5e-3, 1.0e-3};
  return [hop](Rng& rng) { return Duration::from_seconds_f(hop.sample(rng)); };
}

edgeai::FleetStudy::Config fleet_config(std::uint32_t requests) {
  edgeai::FleetStudy::Config config;
  config.model = edgeai::ModelZoo::at("det-base");
  config.policy = edgeai::DispatchPolicy::kJoinShortestQueue;
  config.arrivals_per_second = 12000.0;
  config.requests = requests;
  config.energy.uplink = DataRate::gbps(2);
  config.energy.downlink = DataRate::gbps(4);
  config.seed = 17;
  for (int i = 0; i < 4; ++i) {
    edgeai::FleetStudy::ServerSpec spec;
    spec.accelerator = edgeai::AcceleratorProfile::edge_gpu();
    spec.tier = edgeai::ExecutionTier::kEdge;
    spec.batching.max_batch = 8;
    spec.batching.batch_window = Duration::from_millis_f(2.0);
    spec.batching.queue_capacity = 256;
    spec.uplink = synthetic_hop();
    spec.downlink = synthetic_hop();
    config.servers.push_back(std::move(spec));
  }
  for (int i = 0; i < 2; ++i) {
    edgeai::FleetStudy::ServerSpec spec;
    spec.accelerator = edgeai::AcceleratorProfile::cloud_gpu();
    spec.tier = edgeai::ExecutionTier::kCloud;
    spec.batching.max_batch = 16;
    spec.batching.batch_window = Duration::from_millis_f(2.0);
    spec.batching.queue_capacity = 256;
    spec.uplink = synthetic_hop();
    spec.downlink = synthetic_hop();
    config.servers.push_back(std::move(spec));
  }
  return config;
}

// The zero-fault serving hot path: the ≤2% overhead gate. This function
// must keep running the exact pre-fault workload so the baseline join
// stays meaningful.
void BM_FleetZeroFault(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  for (auto _ : state) {
    const auto config = fleet_config(requests);
    const auto report = edgeai::FleetStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_FleetZeroFault)->Arg(200000)->Unit(benchmark::kMillisecond);

// Hardened but idle: resilience armed (deadline timers on every request,
// slab columns engaged) with a deadline that never expires and no
// faults. The marginal cost of *carrying* the machinery per request,
// separate from the zero-fault gate above.
void BM_FleetArmedIdle(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  for (auto _ : state) {
    auto config = fleet_config(requests);
    config.resilience.deadline = Duration::seconds(10);  // never fires
    config.resilience.max_retries = 2;
    config.resilience.retry_backoff = Duration::micros(200);
    const auto report = edgeai::FleetStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_FleetArmedIdle)->Arg(200000)->Unit(benchmark::kMillisecond);

// The faulted path under load: crashes + retries + deadline + hedging
// all active. Not a regression gate — a cost yardstick for the
// resilience machinery when it is actually working. Asserts the
// determinism contract in-run: the faulted report digests identically
// across repeated executions.
void BM_FleetFaulted(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  std::uint64_t digest = 0;
  for (auto _ : state) {
    auto config = fleet_config(requests);
    config.faults.server_crash_rate_per_s = 0.3;
    config.faults.server_mttr = Duration::millis(80);
    config.resilience.deadline = Duration::from_millis_f(50.0);
    config.resilience.max_retries = 2;
    config.resilience.retry_backoff = Duration::micros(200);
    config.resilience.hedge_delay = Duration::from_millis_f(25.0);
    const auto report = edgeai::FleetStudy::run(config);
    const std::uint64_t d = edgeai::fleet_report_digest(report);
    if (digest == 0) digest = d;
    if (d != digest) state.SkipWithError("faulted run digest diverged");
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_FleetFaulted)->Arg(200000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
