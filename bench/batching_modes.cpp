// google-benchmark suite gating the continuous-batching scheduler in the
// fleet serving engine. Two jobs:
//
//  1. BM_FleetWindowHot is the window-mode serving hot path with the
//     continuous scheduler compiled in but OFF. `scripts/bench_to_json`
//     compares it against the committed bench/batching_modes_baseline.json
//     — a capture of the SAME workload built from the tree immediately
//     before continuous batching landed — and the acceptance bar is a
//     speedup within noise of 1.0 (≤ 2% regression).
//
//  2. The overload pair (BM_FleetWindowOverload / BM_FleetContinuousOverload)
//     measures goodput (SLO-met requests per modeled second) at 1.5x
//     offered-load overload, and BM_ContinuousGoodputGate enforces the
//     headline claim in-bench: continuous + admission control must hold
//     >= 1.3x the window-mode goodput, with a digest gate pinning the
//     continuous run's determinism across iterations.
//
// The workload constants are frozen: det-base behind synthetic access
// hops, join-shortest-queue, seed 17. The hot-path benchmark offers 12k
// req/s to the 4-edge + 2-cloud fleet (0.8x capacity, same operating
// point as bench/faults.cpp); the overload benchmarks offer 12.45k
// req/s to an edge-only 2-GPU fleet (1.5x its ~8.3k req/s capacity —
// the cloud pair would absorb any realistic overload).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>

#include "edgeai/fleet.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace sixg;

edgeai::FleetStudy::DelaySampler synthetic_hop() {
  // Shifted-exponential one-way delay (0.5 ms floor, 1.5 ms mean): the
  // shape of a compiled wired path without the topo construction cost.
  const stats::ShiftedExponential hop{0.5e-3, 1.0e-3};
  return [hop](Rng& rng) { return Duration::from_seconds_f(hop.sample(rng)); };
}

edgeai::FleetStudy::Config fleet_config(std::uint32_t requests,
                                        double arrivals_per_second) {
  edgeai::FleetStudy::Config config;
  config.model = edgeai::ModelZoo::at("det-base");
  config.policy = edgeai::DispatchPolicy::kJoinShortestQueue;
  config.arrivals_per_second = arrivals_per_second;
  config.requests = requests;
  config.energy.uplink = DataRate::gbps(2);
  config.energy.downlink = DataRate::gbps(4);
  config.seed = 17;
  for (int i = 0; i < 4; ++i) {
    edgeai::FleetStudy::ServerSpec spec;
    spec.accelerator = edgeai::AcceleratorProfile::edge_gpu();
    spec.tier = edgeai::ExecutionTier::kEdge;
    spec.batching.max_batch = 8;
    spec.batching.batch_window = Duration::from_millis_f(2.0);
    spec.batching.queue_capacity = 256;
    spec.uplink = synthetic_hop();
    spec.downlink = synthetic_hop();
    config.servers.push_back(std::move(spec));
  }
  for (int i = 0; i < 2; ++i) {
    edgeai::FleetStudy::ServerSpec spec;
    spec.accelerator = edgeai::AcceleratorProfile::cloud_gpu();
    spec.tier = edgeai::ExecutionTier::kCloud;
    spec.batching.max_batch = 16;
    spec.batching.batch_window = Duration::from_millis_f(2.0);
    spec.batching.queue_capacity = 256;
    spec.uplink = synthetic_hop();
    spec.downlink = synthetic_hop();
    config.servers.push_back(std::move(spec));
  }
  return config;
}

std::uint32_t bench_requests(std::uint32_t dflt) {
  // CI smoke runs shrink the workload via the environment; the committed
  // BENCH numbers always use the default.
  if (const char* env = std::getenv("SIXG_BATCHING_BENCH_REQUESTS"))
    return std::uint32_t(std::strtoul(env, nullptr, 10));
  return dflt;
}

// The window-mode serving hot path: the ≤2% overhead gate. This function
// must keep running the exact pre-continuous workload so the baseline
// join stays meaningful.
void BM_FleetWindowHot(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  for (auto _ : state) {
    const auto config = fleet_config(requests, 12000.0);
    const auto report = edgeai::FleetStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_FleetWindowHot)
    ->Arg(bench_requests(200000))
    ->Unit(benchmark::kMillisecond);

// 1.5x-capacity overload on an edge-only fleet: 2 edge GPUs at batch 8
// saturate around 8.3k req/s (the cloud backstop of the hot-path fleet
// would absorb any realistic overload), so 12.45k req/s drives every
// queue to its ring bound. Window mode then serves almost everything
// late (goodput collapses to ~1% of capacity); the continuous config
// adds iteration-level batch re-formation AND the admission bound (~10
// ms of fleet-wide queue) — the serving-engine configuration the
// overload scenarios ship.
constexpr double kOverloadArrivals = 12450.0;

edgeai::FleetStudy::Config overload_config(std::uint32_t requests,
                                           bool continuous) {
  auto config = fleet_config(requests, kOverloadArrivals);
  config.servers.resize(2);  // drop the cloud pair: edge-only overload
  if (continuous) {
    for (auto& spec : config.servers) spec.batching.continuous = true;
    edgeai::FleetStudy::SloClassSpec cls;
    cls.name = "std";
    cls.shed_queue_depth = 96;
    config.classes.push_back(cls);
  }
  return config;
}

/// Goodput of one run: SLO-met requests per modeled second.
double goodput(const edgeai::FleetStudy::Report& report) {
  return report.goodput_per_s;
}

void BM_FleetWindowOverload(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  double gp = 0.0;
  for (auto _ : state) {
    const auto report =
        edgeai::FleetStudy::run(overload_config(requests, false));
    gp = goodput(report);
    benchmark::DoNotOptimize(report.completed);
  }
  state.counters["goodput_per_s"] = gp;
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_FleetWindowOverload)
    ->Arg(bench_requests(100000))
    ->Unit(benchmark::kMillisecond);

void BM_FleetContinuousOverload(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  double gp = 0.0;
  for (auto _ : state) {
    const auto report =
        edgeai::FleetStudy::run(overload_config(requests, true));
    gp = goodput(report);
    benchmark::DoNotOptimize(report.completed);
  }
  state.counters["goodput_per_s"] = gp;
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_FleetContinuousOverload)
    ->Arg(bench_requests(100000))
    ->Unit(benchmark::kMillisecond);

// The headline gate, enforced in-bench: at 1.5x overload the continuous
// scheduler (with admission control) must deliver >= 1.3x window-mode
// goodput, and the continuous run must digest identically across
// iterations (the determinism half of the claim).
void BM_ContinuousGoodputGate(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  double ratio = 0.0;
  std::uint64_t digest = 0;
  for (auto _ : state) {
    const auto window =
        edgeai::FleetStudy::run(overload_config(requests, false));
    const auto continuous =
        edgeai::FleetStudy::run(overload_config(requests, true));
    const std::uint64_t d = edgeai::fleet_report_digest(continuous);
    if (digest == 0) digest = d;
    if (d != digest) {
      state.SkipWithError("continuous overload run is not deterministic");
      return;
    }
    ratio = goodput(window) > 0.0 ? goodput(continuous) / goodput(window)
                                  : 0.0;
    if (ratio < 1.3) {
      state.SkipWithError(
          "continuous goodput below 1.3x window under overload");
      return;
    }
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["goodput_ratio"] = ratio;
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests) * 2);
}
BENCHMARK(BM_ContinuousGoodputGate)
    ->Arg(bench_requests(100000))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
