// Future-work bench (Section VI): energy-efficient network management.
// gNB power and energy-per-bit across load for a 5G macro cell vs a 6G
// cell with micro-sleep, plus daily energy under a diurnal profile.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "ablation-energy"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("ablation-energy", argc, argv);
}
