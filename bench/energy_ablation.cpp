// Future-work bench (Section VI): energy-efficient network management.
// gNB power and energy-per-bit across load for a 5G macro cell vs a 6G
// cell with micro-sleep, plus daily energy under a diurnal profile.

#include <cstdio>

#include "bench_util.hpp"
#include "radio/energy.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section VI (future work)",
                "energy per bit: 5G macro vs 6G with micro-sleep");

  std::printf("\n%s\n", radio::GnbEnergyModel::comparison_table().str().c_str());

  radio::GnbEnergyModel::Params fiveg;
  const radio::GnbEnergyModel a{fiveg};
  radio::GnbEnergyModel::Params sixg;
  sixg.micro_sleep = true;
  sixg.static_watts = 650.0;
  sixg.cell_peak_rate = DataRate::gbps(10);
  const radio::GnbEnergyModel b{sixg};

  std::printf("Daily energy at 20 %% mean load (diurnal 3:1 swing):\n");
  std::printf("  5G macro:          %.1f kWh\n", a.daily_kwh(0.20));
  std::printf("  6G w/ micro-sleep: %.1f kWh\n", b.daily_kwh(0.20));

  bench::anchor("energy/bit gain at 15 % load",
                a.nj_per_bit(0.15) / b.nj_per_bit(0.15),
                "order-of-magnitude 6G target");
  bench::anchor("daily kWh saving (%)",
                (1.0 - b.daily_kwh(0.20) / a.daily_kwh(0.20)) * 100.0,
                "sleep-mode benefit at low load");
  return 0;
}
