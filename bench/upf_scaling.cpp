// Section V-B companion ([29]): UPF instance autoscaling over a diurnal
// session trace — static vs reactive vs predictive pattern-aware scaling,
// trading SLA-violation minutes against instance-hours.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "upf-autoscale"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("upf-autoscale", argc, argv);
}
