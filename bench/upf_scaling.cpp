// Section V-B companion ([29]): UPF instance autoscaling over a diurnal
// session trace — static vs reactive vs predictive pattern-aware scaling,
// trading SLA-violation minutes against instance-hours.

#include <cstdio>

#include "bench_util.hpp"
#include "fivegcore/autoscale.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section V-B ([29])", "UPF instance autoscaling policies");

  const core5g::UpfAutoscaleStudy::Params params;
  std::printf("\n%s\n",
              core5g::UpfAutoscaleStudy::comparison(params).str().c_str());

  const auto statics =
      core5g::UpfAutoscaleStudy::run(core5g::ScalingPolicy::kStatic, params);
  const auto reactive =
      core5g::UpfAutoscaleStudy::run(core5g::ScalingPolicy::kReactive,
                                     params);
  const auto predictive =
      core5g::UpfAutoscaleStudy::run(core5g::ScalingPolicy::kPredictive,
                                     params);

  bench::anchor("static pool violations", double(statics.violation_steps),
                "sized-for-mean pools breach at peak");
  bench::anchor("reactive violations", double(reactive.violation_steps),
                "boot delay bites on flash crowds");
  bench::anchor("predictive violations", double(predictive.violation_steps),
                "pattern-aware scaling [29]");
  bench::anchor("predictive vs static instance-hours",
                predictive.instance_hours / statics.instance_hours,
                "cost of elasticity");
  return 0;
}
