// Section VI edge AI: device/edge/cloud offload policies over a mixed
// model workload across good and bad radio cells.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "offload-policy"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("offload-policy", argc, argv);
}
