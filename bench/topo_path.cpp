// google-benchmark suite for the topology hot path: path resolution
// (policy AS routing + layered Dijkstra) and per-draw latency sampling.
// After PR 3 made the event kernel ~2x faster these two loops dominate
// every measurement-style scenario (grid campaigns, atlas fleets,
// latency ladders, serving-over-network), so this suite is the
// denominator of campaign throughput. `scripts/bench_to_json` turns the
// output into BENCH_topo.json against the committed pre-refactor
// baseline (bench/topo_baseline.json: Network::sample_rtt with per-draw
// link() lookups + libm log, uncached find_path with a freshly
// allocated layered Dijkstra per query).
//
// The shared-name benchmarks measure today's implementation of the same
// operation (CompiledPath draws, route-cached find_path); the *Legacy
// variants keep the reference path measurable side by side.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "topo/europe.hpp"
#include "topo/network.hpp"

namespace {

using namespace sixg;
using namespace sixg::topo;

// A single-AS chain of `hops` links with varied utilisation — the shape
// of the per-hop sampling loop without routing noise. Utilisations span
// the range the Europe world uses (access tails to loaded core links).
Network make_chain(int hops) {
  Network net;
  const AsId as = net.add_as(1, "chain");
  std::vector<NodeId> nodes;
  for (int i = 0; i <= hops; ++i) {
    char name[24];
    char ipv4[24];
    std::snprintf(name, sizeof(name), "n%d", i);
    std::snprintf(ipv4, sizeof(ipv4), "10.0.0.%d", i);
    nodes.push_back(net.add_node(name, ipv4, NodeKind::kRouter, as,
                                 {46.0 + 0.05 * double(i), 14.0}));
  }
  for (int i = 0; i < hops; ++i) {
    Network::LinkOptions options;
    options.utilization = 0.15 + 0.05 * double(i % 10);
    net.add_link(nodes[std::size_t(i)], nodes[std::size_t(i) + 1],
                 LinkRelation::kIntraAs, options);
  }
  return net;
}

// Flattening a routed path into its compiled sampler (one-time cost a
// campaign pays per path; no baseline counterpart).
void BM_PathCompile(benchmark::State& state) {
  const EuropeTopology europe = build_europe();
  const Path path =
      europe.net.find_path(europe.mobile_ue, europe.university_probe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(europe.net.compile(path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathCompile);

// Single RTT draw on an intra-AS chain path of N hops: the inner loop of
// every ping-style campaign. The headline ">=2x" metric of the compiled
// sampler.
void BM_SampleRtt(benchmark::State& state) {
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const CompiledPath path =
      net.compile(net.find_path(NodeId{0}, NodeId{std::uint32_t(hops)}));
  Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.sample_rtt(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleRtt)->Arg(4)->Arg(8)->Arg(16);

// The pre-refactor sampler on the same path, for an in-binary reference
// (link() lookup + distribution object per draw).
void BM_SampleRttLegacy(benchmark::State& state) {
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const Path path = net.find_path(NodeId{0}, NodeId{std::uint32_t(hops)});
  Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.sample_rtt(path, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleRttLegacy)->Arg(8);

// The measured Europe detour path (10 router hops across 8 ASes) — the
// exact path the paper's campaign samples millions of times.
void BM_SampleRttEurope(benchmark::State& state) {
  const EuropeTopology europe = build_europe();
  const CompiledPath path = europe.net.compile(
      europe.net.find_path(europe.mobile_ue, europe.university_probe));
  Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.sample_rtt(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleRttEurope);

// Campaign-style batched draws: 256 RTTs per iteration into a reusable
// buffer via CompiledPath::sample_rtt_into.
void BM_SampleRttBatch(benchmark::State& state) {
  constexpr std::size_t kBatch = 256;
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const CompiledPath path =
      net.compile(net.find_path(NodeId{0}, NodeId{std::uint32_t(hops)}));
  std::vector<double> out(kBatch);
  Rng rng{42};
  for (auto _ : state) {
    path.sample_rtt_into(out, rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBatch));
}
BENCHMARK(BM_SampleRttBatch)->Arg(8)->Arg(16);

// Repeated resolution of the same inter-AS destination — the ">=5x"
// metric: the AS routes are memoized per destination and the layered
// Dijkstra reuses a thread-local scratch workspace over CSR adjacency.
void BM_FindPathRepeat(benchmark::State& state) {
  const EuropeTopology europe = build_europe();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        europe.net.find_path(europe.mobile_ue, europe.university_probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindPathRepeat);

// Cold resolution: a freshly built world per iteration (construction is
// untimed), so every find_path rebuilds CSR + AS routes from scratch —
// the first-query cost the caches amortize away.
void BM_FindPathCold(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    const EuropeTopology world = build_europe();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        world.net.find_path(world.mobile_ue, world.university_probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindPathCold);

// Rotating destinations (three cached AS routes after warm-up): the
// access pattern of fleet scenarios probing a handful of anchors.
void BM_FindPathFanout(benchmark::State& state) {
  const EuropeTopology europe = build_europe();
  const NodeId dsts[] = {europe.university_probe, europe.cloud_vienna,
                         europe.wired_host};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        europe.net.find_path(europe.mobile_ue, dsts[i++ % 3]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindPathFanout);

// Pure intra-AS Dijkstra on a 32-hop chain: isolates the scratch-space /
// CSR win from the AS-route memo.
void BM_FindPathIntra(benchmark::State& state) {
  const Network net = make_chain(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.find_path(NodeId{0}, NodeId{32}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindPathIntra);

// Incident-link enumeration (satellite: span over CSR adjacency instead
// of a fresh vector per call).
void BM_LinksOf(benchmark::State& state) {
  const EuropeTopology europe = build_europe();
  const NodeId node = europe.mobile_ue;
  for (auto _ : state) {
    benchmark::DoNotOptimize(europe.net.links_of(node));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinksOf);

}  // namespace

BENCHMARK_MAIN();
