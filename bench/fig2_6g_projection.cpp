// Forward-looking companion to Figure 2: the same drive-test campaign
// replayed under (a) 5G-SA URLLC and (b) the 6G target profile on the
// locally peered fabric — what the paper's grid would look like once the
// Section V recommendations are deployed.

#include <cstdio>

#include "bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace sixg;
  bench::banner("Figure 2 (projection)",
                "the drive-test grid under the recommended 6G stack");

  // The measured world, for reference.
  const core::KlagenfurtStudy measured;
  const auto measured_report = measured.run_campaign();

  // Fixed world: local breakout + peering.
  core::KlagenfurtStudy::Options options;
  options.europe.local_breakout = true;
  options.europe.local_peering = true;
  const core::KlagenfurtStudy fixed{options};

  const auto run_with = [&](const radio::AccessProfile& profile) {
    const meas::GridCampaign campaign{
        fixed.grid(),          fixed.population(),
        fixed.rem(),           fixed.europe().net,
        fixed.europe().mobile_ue, fixed.europe().university_probe,
        profile, fixed.campaign_config()};
    const netsim::ParallelRunner runner;
    return campaign.run(runner);
  };

  const auto sa_report = run_with(radio::AccessProfile::fiveg_sa_urllc());
  const auto sixg_report = run_with(radio::AccessProfile::sixg());

  std::printf("\n5G-SA URLLC + local peering, mean RTL per cell (ms):\n%s\n",
              sa_report.mean_table().str().c_str());
  std::printf("6G target + local peering, mean RTL per cell (ms):\n%s\n",
              sixg_report.mean_table().str().c_str());

  const auto measured_span = measured_report.mean_of_cell_means();
  const auto sa_span = sa_report.mean_of_cell_means();
  const auto sixg_span = sixg_report.mean_of_cell_means();
  bench::anchor("measured 5G grid mean (ms)", measured_span.mean(),
                "61-110 ms band (Fig. 2)");
  bench::anchor("SA+peering grid mean (ms)", sa_span.mean(),
                "5-6.2 ms class (Sec. V-B)");
  bench::anchor("6G grid mean (ms)", sixg_span.mean(),
                "sub-1 ms goal (Sec. II-A)");
  bench::anchor("max cell under 6G (ms)", sixg_report.max_mean().value,
                "every cell meets the AR budget");
  return 0;
}
