// Forward-looking companion to Figure 2: the same drive-test campaign
// replayed under (a) 5G-SA URLLC and (b) the 6G target profile on the
// locally peered fabric — what the paper's grid would look like once the
// Section V recommendations are deployed.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "fig2-6g"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("fig2-6g", argc, argv);
}
