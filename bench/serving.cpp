// google-benchmark suite for the inference-serving engine: the
// request lifecycle (arrival -> uplink -> dynamic batch -> downlink ->
// record) measured end to end at the request counts the fleet studies
// need. `scripts/bench_to_json` turns this suite's output into
// BENCH_serving.json, comparing against the committed pre-refactor
// baseline (bench/serving_baseline.json).
//
// The workload constants are frozen: det-base on the edge GPU at
// 3000 req/s (≈80 % utilisation at the achieved batch size), batch cap 8
// with a 2 ms window. The baseline capture ran the closure-based
// ServingStudy (per-request std::function completion handlers, nested
// capturing lambdas, retain-everything report, all arrivals prescheduled
// — the only mode that engine had). The current run measures the slab
// engine in its serving mode on the same workload: chained arrivals +
// streaming report, the configuration every million-request study uses.
// BM_ServingLegacyOrder is the slab engine pinned to the byte-identical
// legacy event order and retained report (the mode the classic scenarios
// run), reported without a baseline join for transparency.
//
// BM_ServingPeakRss reports the peak-RSS cost of a 1M-request run via
// the `peak_rss_mb` counter (lower is better; bench_to_json emits the
// baseline/current ratio).

#include <benchmark/benchmark.h>

#include <malloc.h>
#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "edgeai/fleet.hpp"
#include "edgeai/serving.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace sixg;

// ------------------------------------------------------------- peak RSS

/// Reset the kernel's peak-RSS watermark for this process so one run's
/// high-water mark is measurable on its own. Linux-only; harmless no-op
/// where /proc/self/clear_refs is unavailable.
void reset_peak_rss() {
#if defined(__GLIBC__)
  // Return freed heap pages to the OS first: earlier benchmarks'
  // allocations otherwise linger in the malloc arenas and inflate the
  // baseline the watermark resets to.
  malloc_trim(0);
#endif
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

/// Current peak RSS in bytes (VmHWM, honouring clear_refs resets), with
/// a getrusage fallback when /proc is unavailable.
std::uint64_t peak_rss_bytes() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %llu kB",
                      reinterpret_cast<unsigned long long*>(&kb)) == 1) {
        break;
      }
    }
    std::fclose(f);
    if (kb > 0) return kb * 1024;
  }
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return std::uint64_t(usage.ru_maxrss) * 1024;
}

// ------------------------------------------------------------ workloads

edgeai::ServingStudy::Config base_config(std::uint32_t requests) {
  edgeai::ServingStudy::Config config;
  config.model = edgeai::ModelZoo::at("det-base");
  config.accelerator = edgeai::AcceleratorProfile::edge_gpu();
  config.batching.max_batch = 8;
  config.batching.batch_window = Duration::from_millis_f(2.0);
  config.batching.queue_capacity = 512;
  config.arrivals_per_second = 3000.0;
  config.requests = requests;
  config.seed = 17;
  return config;
}

edgeai::ServingStudy::Config serving_mode_config(std::uint32_t requests) {
  auto config = base_config(requests);
  config.chained_arrivals = true;
  config.retain_samples = false;
  return config;
}

edgeai::ServingStudy::DelaySampler synthetic_hop() {
  // Shifted-exponential one-way delay (0.5 ms floor, 1.5 ms mean): the
  // shape of a compiled wired path without the topo construction cost.
  const stats::ShiftedExponential hop{0.5e-3, 1.0e-3};
  return [hop](Rng& rng) { return Duration::from_seconds_f(hop.sample(rng)); };
}

// On-device serving: no network hops, the pure submit -> batch ->
// complete lifecycle. This family is the headline metric of
// BENCH_serving.json.
void BM_ServingLocal(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  for (auto _ : state) {
    const auto config = serving_mode_config(requests);
    const auto report = edgeai::ServingStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_ServingLocal)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Offloaded serving: uplink/downlink delay draws and the radio-airtime
// and energy accounting join the lifecycle.
void BM_ServingNetworked(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  for (auto _ : state) {
    auto config = serving_mode_config(requests);
    config.uplink = synthetic_hop();
    config.downlink = synthetic_hop();
    const auto report = edgeai::ServingStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_ServingNetworked)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// The byte-identical legacy event order (all arrivals prescheduled,
// retain-everything report): what the classic scenarios run. No
// baseline join — reported for transparency next to the serving mode.
void BM_ServingLegacyOrder(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  for (auto _ : state) {
    const auto config = base_config(requests);
    const auto report = edgeai::ServingStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_ServingLegacyOrder)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Peak memory of serving 1M requests, each engine in its native
// 1M-request mode. items/s doubles as the throughput of that mode.
void BM_ServingPeakRss(benchmark::State& state) {
  const auto requests = std::uint32_t(state.range(0));
  std::uint64_t peak = 0;
  for (auto _ : state) {
    reset_peak_rss();
    auto config = serving_mode_config(requests);
    config.uplink = synthetic_hop();
    config.downlink = synthetic_hop();
    const auto report = edgeai::ServingStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
    peak = std::max(peak, peak_rss_bytes());
  }
  state.counters["peak_rss_mb"] =
      benchmark::Counter(double(peak) / (1024.0 * 1024.0));
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(requests));
}
BENCHMARK(BM_ServingPeakRss)->Arg(1000000)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Fleet serving: the city-serving shape — N edge GPUs behind synthetic
// access hops under join-shortest-queue. New with the slab engine (the
// closure engine had no fleet), so no baseline join.
void BM_FleetServing(benchmark::State& state) {
  const auto fleet = std::size_t(state.range(0));
  constexpr std::uint32_t kRequests = 1000000;
  for (auto _ : state) {
    edgeai::FleetStudy::Config config;
    config.model = edgeai::ModelZoo::at("det-base");
    config.policy = edgeai::DispatchPolicy::kJoinShortestQueue;
    config.arrivals_per_second = 3000.0 * double(fleet);
    config.requests = kRequests;
    config.energy.uplink = DataRate::gbps(2);
    config.energy.downlink = DataRate::gbps(4);
    config.seed = 17;
    for (std::size_t i = 0; i < fleet; ++i) {
      edgeai::FleetStudy::ServerSpec spec;
      spec.batching.max_batch = 8;
      spec.batching.batch_window = Duration::from_millis_f(2.0);
      spec.batching.queue_capacity = 512;
      spec.uplink = synthetic_hop();
      spec.downlink = synthetic_hop();
      config.servers.push_back(std::move(spec));
    }
    const auto report = edgeai::FleetStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * kRequests);
}
BENCHMARK(BM_FleetServing)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
