// Section IV-C PHY anchor: Fezeu et al. [22] measured 5G mmWave layer-1
// latency and found 4.4 % of packets under 1 ms and 22.36 % under 3 ms —
// a bimodal distribution governed by beam state, with the application
// layer dominating end-to-end delay. We regenerate the CDF from the
// MmWavePhyModel and contrast it with the mid-band NSA cell the drive
// test used.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "phy-latency"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("phy-latency", argc, argv);
}
