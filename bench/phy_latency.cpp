// Section IV-C PHY anchor: Fezeu et al. [22] measured 5G mmWave layer-1
// latency and found 4.4 % of packets under 1 ms and 22.36 % under 3 ms —
// a bimodal distribution governed by beam state, with the application
// layer dominating end-to-end delay. We regenerate the CDF from the
// MmWavePhyModel and contrast it with the mid-band NSA cell the drive
// test used.

#include <cstdio>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "radio/link_model.hpp"
#include "radio/mmwave.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section IV-C (PHY)",
                "mmWave layer-1/2 latency distribution [22]");

  const radio::MmWavePhyModel phy;
  Rng rng{31};
  stats::Histogram hist{0.0, 20.0, 80};
  for (int i = 0; i < 300000; ++i)
    hist.add(phy.sample_one_way(rng).ms());

  std::printf("\nmmWave PHY one-way latency CDF:\n");
  for (const double ms : {0.5, 1.0, 2.0, 3.0, 5.0, 10.0}) {
    std::printf("  P(latency < %4.1f ms) = %6.2f %%\n", ms,
                hist.cdf(ms) * 100.0);
  }

  bench::anchor("share under 1 ms (%)", hist.cdf(1.0) * 100.0, "4.4 % [22]");
  bench::anchor("share under 3 ms (%)", hist.cdf(3.0) * 100.0,
                "22.36 % [22]");

  // The same statistic for the mid-band NSA access of the drive test:
  // the access the paper's campaign actually traversed is slower still.
  const core::KlagenfurtStudy study;
  const radio::RadioLinkModel nsa{study.access_profile()};
  stats::Histogram nsa_hist{0.0, 120.0, 60};
  const auto cells = study.grid().all_cells();
  for (int i = 0; i < 100000; ++i) {
    const auto cell = cells[rng.uniform_int(cells.size())];
    nsa_hist.add(nsa.sample_downlink(study.rem().at(cell), rng).ms());
  }
  std::printf("\nMid-band NSA one-way (downlink, full stack) for contrast:\n");
  for (const double ms : {1.0, 3.0, 10.0, 20.0}) {
    std::printf("  P(latency < %4.1f ms) = %6.2f %%\n", ms,
                nsa_hist.cdf(ms) * 100.0);
  }
  bench::anchor("NSA downlink share under 3 ms (%)", nsa_hist.cdf(3.0) * 100.0,
                "application-visible access is slower than PHY");
  return 0;
}
