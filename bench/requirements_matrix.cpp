// Sections II-III: the requirements analysis. Regenerates the
// application-requirements registry, the feasibility matrix against 5G
// (claimed), 5G (measured urban) and the 6G target, the domain traffic
// table (4 TB/day vehicles, 5 TB/day factory lines, ...) and the
// 125-billion-device scalability arithmetic.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "requirements"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("requirements", argc, argv);
}
