// Sections II-III: the requirements analysis. Regenerates the
// application-requirements registry, the feasibility matrix against 5G
// (claimed), 5G (measured urban) and the 6G target, the domain traffic
// table (4 TB/day vehicles, 5 TB/day factory lines, ...) and the
// 125-billion-device scalability arithmetic.

#include <cstdio>

#include "apps/traffic.hpp"
#include "bench_util.hpp"
#include "core/requirements.hpp"

int main() {
  using namespace sixg;
  bench::banner("Sections II-III", "requirements analysis and feasibility");

  const auto& registry = core::RequirementsRegistry::paper_registry();
  const std::vector<core::GenerationProfile> generations{
      core::GenerationProfile::fiveg_claimed(),
      core::GenerationProfile::fiveg_measured_urban(),
      core::GenerationProfile::sixg_target(),
  };
  std::printf("\nFeasibility matrix (latency! = RTT budget violated):\n%s\n",
              registry.feasibility_matrix(generations).str().c_str());

  std::printf("Domain traffic profiles (Sec. III-B/III-C):\n%s\n",
              apps::DomainTraffic::matrix().str().c_str());

  const apps::ScalabilityModel scalability;
  std::printf("Scalability (Sec. II-C/III-C): 2030 forecast %.0f billion "
              "devices over %.1f M km^2 urban area\n",
              scalability.forecast_devices_2030 / 1e9,
              scalability.urbanised_area_km2 / 1e6);
  std::printf("  required density: %.0f devices/km^2\n",
              scalability.required_density());
  std::printf("  5G admits %.0f /km^2 -> %s\n",
              scalability.devices_per_km2_5g,
              scalability.feasible_5g() ? "feasible" : "INSUFFICIENT");
  std::printf("  6G admits %.0f /km^2 -> %s\n",
              scalability.devices_per_km2_6g,
              scalability.feasible_6g() ? "feasible" : "INSUFFICIENT");

  bench::anchor("binding requirement (ms)",
                registry.binding_requirement().user_perceived.ms(),
                "16.6 ms (60 FPS)");
  bench::anchor("6G device density (/km^2)", scalability.devices_per_km2_6g,
                "hundreds of thousands+ [9]");
  return 0;
}
