// North-star fleet serving: 1M+ det-base requests per sweep across a 6G
// edge-GPU fleet behind the peered metro path — latency-SLO attainment,
// tail latency and drop behaviour as the fleet grows through the
// provisioning knee of a fixed 12k req/s city load.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "city-serving"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("city-serving", argc, argv);
}
