// Section V-B: User Plane Function integration. Sweeps UPF anchor
// placements (remote/cloud/metro/edge) against access generations
// (5G-NSA / 5G-SA URLLC / 6G) and reproduces the paper's 62 ms -> 5-6.2 ms
// (~90 % reduction) progression, plus the dynamic-selection policy.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "ablation-upf"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("ablation-upf", argc, argv);
}
