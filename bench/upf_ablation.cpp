// Section V-B: User Plane Function integration. Sweeps UPF anchor
// placements (remote/cloud/metro/edge) against access generations
// (5G-NSA / 5G-SA URLLC / 6G) and reproduces the paper's 62 ms -> 5-6.2 ms
// (~90 % reduction) progression, plus the dynamic-selection policy.

#include <cstdio>

#include "bench_util.hpp"
#include "fivegcore/placement.hpp"
#include "fivegcore/selector.hpp"
#include "topo/europe.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section V-B", "UPF placement x access generation sweep");

  topo::EuropeOptions options;
  options.local_breakout = true;
  const auto europe = topo::build_europe(options);
  const core5g::UpfPlacementStudy study{europe,
                                        core5g::UpfPlacementStudy::Config{}};
  const auto rows = study.sweep();
  std::printf("\n%s\n", core5g::UpfPlacementStudy::table(rows).str().c_str());

  double baseline = 0.0;
  double edge_sa = 0.0;
  double metro_sa = 0.0;
  double edge_6g = 0.0;
  for (const auto& r : rows) {
    if (r.placement == core5g::UpfPlacement::kNone) baseline = r.mean_rtt_ms;
    if (r.placement == core5g::UpfPlacement::kEdge &&
        r.access_profile == "5G-SA-URLLC")
      edge_sa = r.mean_rtt_ms;
    if (r.placement == core5g::UpfPlacement::kMetro &&
        r.access_profile == "5G-SA-URLLC")
      metro_sa = r.mean_rtt_ms;
    if (r.placement == core5g::UpfPlacement::kEdge &&
        r.access_profile == "6G")
      edge_6g = r.mean_rtt_ms;
  }
  bench::anchor("baseline (remote breakout, 5G-NSA) ms", baseline,
                "exceeding 62 ms");
  bench::anchor("edge..metro UPF + capable 5G (ms)", edge_sa,
                "5-6.2 ms [30][31]");
  bench::anchor("  (metro bound)", metro_sa, "5-6.2 ms [30][31]");
  bench::anchor("reduction, edge+SA vs baseline (%)",
                (1.0 - edge_sa / baseline) * 100.0, "up to 90 %");
  bench::anchor("edge UPF + 6G target (ms)", edge_6g, "below 1 ms (Sec. V-B)");

  // Dynamic UPF selection: latency-critical flows to the edge, bulk to the
  // cloud, graceful degradation when the edge fills up.
  Rng rng{2024};
  const auto flows = core5g::synthesize_flows(400, 0.15, 0.35, rng);
  core5g::DynamicUpfSelector selector{core5g::DynamicUpfSelector::Config{}};
  const auto assignments = selector.assign(flows);
  int critical_total = 0;
  int critical_edge = 0;
  for (const auto& a : assignments) {
    if (a.flow_class == core5g::FlowClass::kLatencyCritical) {
      ++critical_total;
      if (a.anchor == core5g::UpfPlacement::kEdge) ++critical_edge;
    }
  }
  std::printf("\nDynamic UPF selection: %d of %d latency-critical flows at "
              "the edge (capacity-limited), rest degrade to metro.\n",
              critical_edge, critical_total);
  return 0;
}
