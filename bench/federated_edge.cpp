// Future-work bench (Section VI): federated learning at the edge.
// Runs synchronous FedAvg rounds under three regimes: the measured 5G
// access with a cloud aggregator behind the detour, the same access with
// an edge aggregator, and the 6G target stack. Transfer rates are capped
// by the loss-based congestion-control bound, so the long-RTT detour
// throttles model uploads even when the radio has headroom.

#include <cstdio>

#include "apps/federated.hpp"
#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "measurement/ping.hpp"
#include "radio/link_model.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section VI (future work)",
                "federated learning rounds across network regimes");

  const core::KlagenfurtStudy study;
  const auto conditions = study.rem().at(*study.grid().parse_label("C2"));
  const radio::RadioLinkModel nsa{study.access_profile()};
  const radio::RadioLinkModel sixg_radio{radio::AccessProfile::sixg()};

  topo::EuropeOptions fixed;
  fixed.local_breakout = true;
  fixed.local_peering = true;
  const auto peered = topo::build_europe(fixed);
  const auto& detour_world = study.europe();

  const meas::PingMeasurement cloud_ping{detour_world.net,
                                         detour_world.mobile_ue,
                                         detour_world.university_probe, nsa,
                                         conditions};
  const meas::PingMeasurement edge_ping{peered.net, peered.mobile_ue,
                                        peered.university_probe, nsa,
                                        conditions};
  const meas::PingMeasurement sixg_ping{peered.net, peered.mobile_ue,
                                        peered.university_probe, sixg_radio,
                                        conditions};

  constexpr double kTransitLoss = 3e-4;  // shared public transit
  constexpr double kLocalLoss = 5e-5;    // clean local fabric

  const auto run_regime = [&](const meas::PingMeasurement& ping,
                              double loss) {
    // Estimate the regime's RTT for the congestion bound.
    Rng probe_rng{1};
    stats::Summary rtt_ms;
    for (int i = 0; i < 400; ++i) rtt_ms.add(ping.sample_ms(probe_rng));
    apps::FederatedRoundModel::Config config;
    config.uplink_rate = apps::effective_uplink(
        config.uplink_rate, Duration::from_millis_f(rtt_ms.mean()), loss);
    const apps::FederatedRoundModel model{
        [&ping](Rng& rng) {
          return Duration::from_millis_f(ping.sample_ms(rng) / 2.0);
        },
        config};
    return model.run();
  };

  const std::vector<apps::FederatedScenario> scenarios{
      {"cloud aggregator, 5G + detour", run_regime(cloud_ping, kTransitLoss)},
      {"edge aggregator, 5G + peering", run_regime(edge_ping, kLocalLoss)},
      {"edge aggregator, 6G + peering", run_regime(sixg_ping, kLocalLoss)},
  };
  std::printf("\n%s\n", apps::federated_comparison(scenarios).str().c_str());

  const double cloud_s = scenarios[0].report.round_seconds.mean();
  const double edge_s = scenarios[1].report.round_seconds.mean();
  const double sixg_s = scenarios[2].report.round_seconds.mean();
  bench::anchor("round speedup, edge vs cloud", cloud_s / edge_s,
                "edge aggregation wins (Sec. VI)");
  bench::anchor("round speedup, 6G edge vs cloud", cloud_s / sixg_s,
                "6G compounds the gain");
  bench::anchor("network share at cloud (%)",
                scenarios[0].report.network_share * 100.0,
                "network-bound FL on detoured 5G");
  return 0;
}
