// Future-work bench (Section VI): federated learning at the edge.
// Runs synchronous FedAvg rounds under three regimes: the measured 5G
// access with a cloud aggregator behind the detour, the same access with
// an edge aggregator, and the 6G target stack. Transfer rates are capped
// by the loss-based congestion-control bound, so the long-RTT detour
// throttles model uploads even when the radio has headroom.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "federated-edge"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("federated-edge", argc, argv);
}
