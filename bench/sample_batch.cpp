// google-benchmark suite for the vectorized batch-sampling lane
// (stats::fast_log_batch, Rng::fill, ShiftedExponential::sample_into,
// CompiledPath::sample_rtt_into, edgeai::NetLeg::sample_into). The
// committed baseline (bench/sample_baseline.json) is a capture of this
// same binary with SIXG_SIMD=scalar — the batch entry points pinned to
// the one-at-a-time reference tier, i.e. the PR 4 scalar sampling
// arithmetic — so the joined BENCH_sample.json isolates exactly the
// vectorization win. The *ScalarLoop benchmarks run the per-draw PR 4
// call sequence unconditionally in both captures: their speedup is the
// ~1x control that proves the comparison measures the lane, not the box.
//
// Measured outcome (best-of-3 interleaved, committed in
// BENCH_sample.json): the log kernel itself vectorizes 2.0x, arrival
// pre-draw 1.4x, full RTT draws 1.25x. The full-draw number is
// Amdahl-capped, not a lane defect: the replay contract mandates two
// *sequential* xoshiro words per hop (queueing + spike chance), ~2.8 ns
// of the ~6.9 ns scalar draw on the capture box, so even a free log
// kernel tops out around 1.8x. The lane vectorizes everything the
// contract leaves order-free.
//
// main() refuses to run any timing until the batched lane reproduces the
// scalar sampler bit-for-bit on the bench's own path: a benchmark of a
// kernel that broke the replay contract would be a number about nothing.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "edgeai/net_leg.hpp"
#include "radio/link_model.hpp"
#include "radio/profile.hpp"
#include "stats/distributions.hpp"
#include "stats/fast_math.hpp"
#include "topo/network.hpp"

namespace {

using namespace sixg;
using namespace sixg::topo;

// Same chain shape as bench/topo_path.cpp: varied utilisations spanning
// the Europe world's range.
Network make_chain(int hops) {
  Network net;
  const AsId as = net.add_as(1, "chain");
  std::vector<NodeId> nodes;
  for (int i = 0; i <= hops; ++i) {
    char name[24];
    char ipv4[24];
    std::snprintf(name, sizeof(name), "n%d", i);
    std::snprintf(ipv4, sizeof(ipv4), "10.0.0.%d", i);
    nodes.push_back(net.add_node(name, ipv4, NodeKind::kRouter, as,
                                 {46.0 + 0.05 * double(i), 14.0}));
  }
  for (int i = 0; i < hops; ++i) {
    Network::LinkOptions options;
    options.utilization = 0.15 + 0.05 * double(i % 10);
    net.add_link(nodes[std::size_t(i)], nodes[std::size_t(i) + 1],
                 LinkRelation::kIntraAs, options);
  }
  return net;
}

CompiledPath compile_chain(const Network& net, int hops) {
  return net.compile(net.find_path(NodeId{0}, NodeId{std::uint32_t(hops)}));
}

// --------------------------------------------------------- fast_log core

// The batch log kernel on sampler-shaped inputs x = 1 - u, at the
// dispatched tier (scalar in the baseline capture, widest here).
void BM_FastLogBatch(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::vector<double> x(n), out(n);
  Rng rng{42};
  for (double& v : x) v = 1.0 - rng.uniform();
  for (auto _ : state) {
    stats::fast_log_batch(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
  state.SetLabel(stats::simd_tier_name(stats::simd_tier()));
}
BENCHMARK(BM_FastLogBatch)->Arg(256)->Arg(4096);

// Per-draw scalar kernel calls over the same buffer — the PR 4 call
// sequence, identical in both captures (the ~1x control).
void BM_FastLogScalarLoop(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::vector<double> x(n), out(n);
  Rng rng{42};
  for (double& v : x) v = 1.0 - rng.uniform();
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = stats::fast_log_positive_normal(x[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_FastLogScalarLoop)->Arg(256);

// ------------------------------------------------------------- raw words

void BM_RngFill(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::vector<std::uint64_t> words(n);
  Rng rng{42};
  for (auto _ : state) {
    rng.fill(words);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_RngFill)->Arg(256)->Arg(4096);

void BM_RngScalarWords(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::vector<std::uint64_t> words(n);
  Rng rng{42};
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) words[i] = rng();
    benchmark::DoNotOptimize(words.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_RngScalarWords)->Arg(256);

// ------------------------------------------------- exponential arrivals

// The arrival pre-draw of the serving engines: block interarrival
// sampling through Rng::fill + fast_log_batch.
void BM_ExpSampleInto(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const stats::ShiftedExponential dist{0.0, 1.0 / 4000.0};
  std::vector<double> out(n);
  Rng rng{42};
  for (auto _ : state) {
    dist.sample_into(out, rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_ExpSampleInto)->Arg(256)->Arg(1024);

void BM_ExpSampleLoop(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const stats::ShiftedExponential dist{0.0, 1.0 / 4000.0};
  std::vector<double> out(n);
  Rng rng{42};
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) out[i] = dist.sample(rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_ExpSampleLoop)->Arg(256);

// ------------------------------------------------------ path RTT draws

// The headline metric: batched networked RTT sampling (256 draws per
// refill through the two-phase lane) vs the per-draw PR 4 loop below.
void BM_SampleRttBatch(benchmark::State& state) {
  constexpr std::size_t kBatch = 256;
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const CompiledPath path = compile_chain(net, hops);
  std::vector<double> out(kBatch);
  PathBatchScratch scratch;
  Rng rng{42};
  for (auto _ : state) {
    path.sample_rtt_into(out, rng, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBatch));
  state.SetLabel(stats::simd_tier_name(stats::simd_tier()));
}
BENCHMARK(BM_SampleRttBatch)->Arg(4)->Arg(8)->Arg(16);

// The PR 4 scalar path: one sample_rtt call per draw (identical in both
// captures; also the direct in-run denominator for the batch rows).
void BM_SampleRttScalarLoop(benchmark::State& state) {
  constexpr std::size_t kBatch = 256;
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const CompiledPath path = compile_chain(net, hops);
  std::vector<double> out(kBatch);
  Rng rng{42};
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) out[i] = path.sample_rtt(rng).ms();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBatch));
}
BENCHMARK(BM_SampleRttScalarLoop)->Arg(4)->Arg(8)->Arg(16);

// ------------------------------------------------------ serving net legs

// The serving engines' block refill: a wired NetLeg sampling 256 one-way
// draws into a Duration ring.
void BM_NetLegWiredBatch(benchmark::State& state) {
  constexpr std::size_t kBlock = 256;
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const edgeai::NetLeg leg = edgeai::NetLeg::wired(compile_chain(net, hops));
  std::vector<Duration> out(kBlock);
  PathBatchScratch scratch;
  Rng rng{42};
  for (auto _ : state) {
    leg.sample_into(out, rng, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBlock));
}
BENCHMARK(BM_NetLegWiredBatch)->Arg(8);

// Radio-headed leg: phase 1 stays scalar per request (data-dependent
// HARQ/spike draw counts) but the path tail still vectorizes.
void BM_NetLegRadioBatch(benchmark::State& state) {
  constexpr std::size_t kBlock = 256;
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const radio::RadioLinkModel radio_model{radio::AccessProfile::sixg()};
  const edgeai::NetLeg leg = edgeai::NetLeg::radio_then_path(
      radio_model, radio::CellConditions{}, compile_chain(net, hops));
  std::vector<Duration> out(kBlock);
  PathBatchScratch scratch;
  Rng rng{42};
  for (auto _ : state) {
    leg.sample_into(out, rng, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBlock));
}
BENCHMARK(BM_NetLegRadioBatch)->Arg(8);

void BM_NetLegRadioScalarLoop(benchmark::State& state) {
  constexpr std::size_t kBlock = 256;
  const int hops = int(state.range(0));
  const Network net = make_chain(hops);
  const radio::RadioLinkModel radio_model{radio::AccessProfile::sixg()};
  const edgeai::NetLeg leg = edgeai::NetLeg::radio_then_path(
      radio_model, radio::CellConditions{}, compile_chain(net, hops));
  std::vector<Duration> out(kBlock);
  Rng rng{42};
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBlock; ++i) out[i] = leg(rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBlock));
}
BENCHMARK(BM_NetLegRadioScalarLoop)->Arg(8);

// ------------------------------------------------------ bit-equality gate

// Abort before timing anything if the dispatched tier's batched RTT
// sampler diverges from the scalar sampler by a single bit anywhere in a
// 4096-draw sweep of the bench path.
void verify_bit_equality_or_die() {
  const Network net = make_chain(8);
  const CompiledPath path = compile_chain(net, 8);
  Rng batch_rng{977};
  Rng scalar_rng{977};
  std::vector<double> out(4096);
  PathBatchScratch scratch;
  path.sample_rtt_into(out, batch_rng, scratch);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double ref = path.sample_rtt(scalar_rng).ms();
    std::uint64_t a, b;
    std::memcpy(&a, &out[i], 8);
    std::memcpy(&b, &ref, 8);
    if (a != b) {
      std::fprintf(stderr,
                   "bench_sample_batch: tier %s diverges from scalar at draw "
                   "%zu (%a != %a); refusing to benchmark a broken lane\n",
                   stats::simd_tier_name(stats::simd_tier()), i, out[i], ref);
      std::abort();
    }
  }
  if (batch_rng() != scalar_rng()) {
    std::fprintf(stderr,
                 "bench_sample_batch: tier %s consumed a different number of "
                 "RNG words than the scalar sampler\n",
                 stats::simd_tier_name(stats::simd_tier()));
    std::abort();
  }
}

}  // namespace

int main(int argc, char** argv) {
  verify_bit_equality_or_die();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
