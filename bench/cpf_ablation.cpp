// Section V-C: control-plane functionality enhancement. Three studies:
//  1. PDU session setup — conventional 5G ladder vs the converged
//     RAN-core edge control plane of [38];
//  2. context-aware PDR/QER handling (Jain et al. [32]) vs linear scan,
//     including multi-flow-per-UE prioritisation;
//  3. handover interruption under control-plane load: core-anchored vs
//     RIC-converged vs hybrid (the paper's recommended balance).

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "ablation-cpf"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("ablation-cpf", argc, argv);
}
