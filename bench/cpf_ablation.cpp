// Section V-C: control-plane functionality enhancement. Three studies:
//  1. PDU session setup — conventional 5G ladder vs the converged
//     RAN-core edge control plane of [38];
//  2. context-aware PDR/QER handling (Jain et al. [32]) vs linear scan,
//     including multi-flow-per-UE prioritisation;
//  3. handover interruption under control-plane load: core-anchored vs
//     RIC-converged vs hybrid (the paper's recommended balance).

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fivegcore/session.hpp"
#include "oran/handover.hpp"
#include "oran/qos_xapp.hpp"
#include "oran/ric.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section V-C", "control-plane enhancement ablations");

  // --- 1. session setup ------------------------------------------------
  {
    const core5g::SessionSetupModel model{core5g::ControlPlaneSites{}};
    Rng rng{3};
    stats::Summary conv_ms;
    stats::Summary edge_ms;
    std::uint32_t conv_msgs = 0;
    std::uint32_t edge_msgs = 0;
    for (int i = 0; i < 3000; ++i) {
      const auto c = model.conventional(rng);
      const auto e = model.converged_edge(rng);
      conv_ms.add(c.total.ms());
      edge_ms.add(e.total.ms());
      conv_msgs = c.messages;
      edge_msgs = e.messages;
    }
    TextTable t{{"Control plane", "Messages", "Mean setup (ms)", "Max (ms)"}};
    t.set_align(0, TextTable::Align::kLeft);
    t.add_row({"conventional 5G (AMF/SMF in core)",
               TextTable::integer(conv_msgs), TextTable::num(conv_ms.mean(), 2),
               TextTable::num(conv_ms.max(), 2)});
    t.add_row({"converged edge control plane [38]",
               TextTable::integer(edge_msgs), TextTable::num(edge_ms.mean(), 2),
               TextTable::num(edge_ms.max(), 2)});
    std::printf("\nPDU session establishment:\n%s\n", t.str().c_str());
    bench::anchor("setup latency factor", conv_ms.mean() / edge_ms.mean(),
                  "consolidation gain (Sec. V-C)");
  }

  // --- 2. context-aware QoS rules ---------------------------------------
  {
    oran::QosXApp::WorkloadParams params;
    std::printf("Context-aware PDR/QER handling (%u rules, %u active flows, "
                "%u flows/UE):\n%s\n",
                params.total_rules, params.active_flows, params.flows_per_ue,
                oran::QosXApp::comparison(params).str().c_str());
    const auto linear =
        oran::QosXApp::evaluate(core5g::RuleTable::Mode::kLinearScan, params);
    const auto ctx = oran::QosXApp::evaluate(
        core5g::RuleTable::Mode::kContextAware, params);
    bench::anchor("lookup latency reduction",
                  linear.lookup_ns.mean() / ctx.lookup_ns.mean(),
                  "reduced lookup latency [32]");
    bench::anchor("prioritised UEs simultaneously",
                  double(ctx.prioritised_ues),
                  "multiple flows per UE [32]");
  }

  // --- 3. handover storm -------------------------------------------------
  {
    const oran::HandoverModel model;
    std::printf("Handover interruption vs control-plane load:\n%s\n",
                model.storm_table({50.0, 400.0, 1200.0}, 2000, 0xcafe)
                    .str()
                    .c_str());
  }

  // --- RIC loop reference -------------------------------------------------
  {
    const oran::NearRtRic ric{oran::NearRtRic::Config{}};
    bench::anchor("Near-RT RIC control loop mean (ms)",
                  ric.expected_control_loop().ms(),
                  "10 ms - 1 s near-RT band");
  }
  return 0;
}
