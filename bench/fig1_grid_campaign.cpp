// Figure 1: "Mobile evaluation scenario using grid segmentation".
// Regenerates the campaign design: the 6x7 sector of 1 km cells around the
// university, the synthetic census (Statistik Austria substitute), the
// drive traces of the measurement nodes, and the resulting per-cell
// measurement counts whose variation the paper attributes to traffic flow.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "fig1"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("fig1", argc, argv);
}
