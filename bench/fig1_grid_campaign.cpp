// Figure 1: "Mobile evaluation scenario using grid segmentation".
// Regenerates the campaign design: the 6x7 sector of 1 km cells around the
// university, the synthetic census (Statistik Austria substitute), the
// drive traces of the measurement nodes, and the resulting per-cell
// measurement counts whose variation the paper attributes to traffic flow.

#include <cstdio>

#include "bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace sixg;
  bench::banner("Figure 1", "grid segmentation and campaign design");

  const core::KlagenfurtStudy study;
  const auto& grid = study.grid();
  const auto& pop = study.population();

  // Census grid: density per cell, marking the paper's <1000 /km^2
  // under-sampling criterion.
  std::printf("\nPopulation density per cell (inhabitants/km^2, * = sparse "
              "<1000):\n");
  for (int row = 0; row < grid.rows(); ++row) {
    std::printf("  %c ", char('A' + row));
    for (int col = 0; col < grid.cols(); ++col) {
      const geo::CellIndex c{row, col};
      std::printf("%7.0f%c", pop.density(c), pop.sparse(c) ? '*' : ' ');
    }
    std::printf("\n");
  }
  std::printf("  sector population: %.0f\n", pop.total_population());

  // Drive traces.
  const meas::GridCampaign campaign{
      grid,          pop,
      study.rem(),   study.europe().net,
      study.europe().mobile_ue, study.europe().university_probe,
      study.access_profile(), study.campaign_config()};
  const auto plans = campaign.plans();
  std::printf("\nDrive traces (%zu mobile nodes):\n", plans.size());
  for (std::size_t n = 0; n < plans.size(); ++n) {
    std::printf("  node %zu: %4zu cell visits over %s, %d distinct cells\n",
                n, plans[n].visits().size(),
                plans[n].total_duration().str().c_str(),
                plans[n].traversed_cell_count(grid));
  }

  // Resulting sample counts.
  const netsim::ParallelRunner runner;
  const auto report = campaign.run(runner);
  std::printf("\nMeasurement counts per cell ('-' = not traversed):\n%s",
              report.count_table().str().c_str());

  bench::anchor("traversed cells", report.traversed_count(), "33");
  bench::anchor("suppressed cells (<10 samples)", report.suppressed_count(),
                "\"a few\" (border regions)");
  return 0;
}
