// google-benchmark suite for the conservative-window sharded fleet:
// the city-serving workload of PR 6 at fleet scale, measured as a
// worker-count scaling curve. `scripts/bench_to_json` turns this
// suite's output into BENCH_shard.json, joining against
// bench/shard_baseline.json — a capture of the SAME binary with
// SIXG_SHARD_FORCE_SERIAL=1, which pins every row to one worker
// thread. The per-row speedup column therefore reads directly as
// parallel scaling: workers:8 speedup = T(1 worker) / T(8 workers).
//
// The frozen workload is 16 spatial shards (city districts of ~625k
// subscribers each — 10M users at full scale), three det-base edge
// GPUs per shard behind join-shortest-queue, 12k req/s offered per
// shard, 10 % of arrivals offloaded to a random remote shard over
// 1.5 ms-floor inter-pod legs (the conservative window). Full scale is
// 6.25M requests per shard (100M total), selected with
// SIXG_SHARD_BENCH_REQUESTS=6250000; the default is 62500 per shard
// (1M total) so an untuned run and `bench_to_json --smoke` stay cheap.
//
// Every row computes fleet_report_digest and aborts on any mismatch
// across worker counts: the scaling curve is only admissible if the
// output is byte-identical at every measured thread count.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "edgeai/fleet.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace sixg;

constexpr std::uint32_t kShards = 16;

/// Requests simulated per shard. SIXG_SHARD_BENCH_REQUESTS overrides
/// the quick default; the committed BENCH_shard.json capture sets
/// 6250000 (100M requests across the 16 shards).
std::uint32_t requests_per_shard() {
  if (const char* env = std::getenv("SIXG_SHARD_BENCH_REQUESTS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return std::uint32_t(v);
  }
  return 62500;
}

/// SIXG_SHARD_FORCE_SERIAL=1 pins every row to one worker thread —
/// how bench/shard_baseline.json is captured, so the bench_to_json
/// speedup column measures parallel scaling row by row.
bool force_serial() {
  const char* env = std::getenv("SIXG_SHARD_FORCE_SERIAL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

edgeai::FleetStudy::DelaySampler synthetic_hop(double shift_s,
                                               double mean_s) {
  // Shifted-exponential one-way delay: the shape of a compiled wired
  // path without the topo construction cost.
  const stats::ShiftedExponential hop{shift_s, mean_s};
  return [hop](Rng& rng) { return Duration::from_seconds_f(hop.sample(rng)); };
}

/// One city district: three edge GPUs behind JSQ at 12k req/s, the
/// city-serving shape the fleet studies use.
edgeai::FleetStudy::Config pod_config(std::uint32_t requests) {
  edgeai::FleetStudy::Config config;
  config.model = edgeai::ModelZoo::at("det-base");
  config.policy = edgeai::DispatchPolicy::kJoinShortestQueue;
  config.arrivals_per_second = 12000.0;
  config.requests = requests;
  config.slo = Duration::from_millis_f(20.0);
  config.energy.uplink = DataRate::gbps(2);
  config.energy.downlink = DataRate::gbps(4);
  config.seed = 17;
  for (int i = 0; i < 3; ++i) {
    edgeai::FleetStudy::ServerSpec spec;
    spec.accelerator = edgeai::AcceleratorProfile::edge_gpu();
    spec.batching.max_batch = 8;
    spec.batching.batch_window = Duration::from_millis_f(1.0);
    spec.batching.queue_capacity = 64;
    spec.tier = edgeai::ExecutionTier::kEdge;
    spec.uplink = synthetic_hop(0.3e-3, 0.5e-3);
    spec.downlink = synthetic_hop(0.3e-3, 0.5e-3);
    config.servers.push_back(std::move(spec));
  }
  return config;
}

edgeai::ShardedFleetStudy::Config city_config(std::uint32_t per_shard,
                                              unsigned workers) {
  edgeai::ShardedFleetStudy::Config config;
  config.shard = pod_config(per_shard);
  config.shards = kShards;
  config.workers = workers;
  // Inter-pod legs: 1.5 ms floor == the conservative window (the
  // tightest legal sizing), exponential tail on top.
  config.window = Duration::from_millis_f(1.5);
  config.remote_fraction = 0.10;
  config.remote_uplink = synthetic_hop(1.5e-3, 0.4e-3);
  config.remote_downlink = synthetic_hop(1.5e-3, 0.4e-3);
  return config;
}

// The headline scaling curve: one row per worker count, identical
// workload and — enforced below — identical output bytes.
void BM_ShardedCityServing(benchmark::State& state) {
  const auto workers = unsigned(state.range(0));
  const std::uint32_t per_shard = requests_per_shard();
  const unsigned effective = force_serial() ? 1u : workers;
  edgeai::ShardedFleetStudy::Report report;
  for (auto _ : state) {
    report = edgeai::ShardedFleetStudy::run(city_config(per_shard, effective));
    benchmark::DoNotOptimize(report.completed);
  }
  const std::uint64_t digest = edgeai::fleet_report_digest(report);
  // Determinism gate: every worker count must reproduce the first
  // row's report byte for byte (rows run in registration order, so
  // the reference is the workers:1 row).
  static std::map<std::uint32_t, std::uint64_t> reference;
  const auto [it, first] = reference.emplace(per_shard, digest);
  if (!first && it->second != digest) {
    SIXG_ERROR("bench.shard")
        << "BM_ShardedCityServing: report digest diverged at workers="
        << effective << " (" << std::hex << std::setfill('0')
        << std::setw(16) << digest << " != " << std::setw(16) << it->second
        << ") — the scaling curve is inadmissible";
    std::abort();
  }
  state.counters["requests_total"] = double(per_shard) * double(kShards);
  state.counters["windows"] = double(report.windows);
  state.counters["remote_share"] =
      double(report.remote_requests) / (double(per_shard) * double(kShards));
  state.counters["host_cores"] = double(std::thread::hardware_concurrency());
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(per_shard) * std::int64_t(kShards));
}
BENCHMARK(BM_ShardedCityServing)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Kernel overhead at one shard: the windowed wrapper against the plain
// serial FleetStudy on the same workload. The pair bounds what the
// barrier/mailbox machinery costs when there is nothing to overlap
// (their reports are byte-identical — tests/test_sharded.cpp).
constexpr std::uint32_t kOverheadRequests = 250000;

void BM_FleetSerialEngine(benchmark::State& state) {
  for (auto _ : state) {
    const auto report = edgeai::FleetStudy::run(pod_config(kOverheadRequests));
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(kOverheadRequests));
}
BENCHMARK(BM_FleetSerialEngine)->Unit(benchmark::kMillisecond);

void BM_FleetOneShardWindowed(benchmark::State& state) {
  for (auto _ : state) {
    edgeai::ShardedFleetStudy::Config config;
    config.shard = pod_config(kOverheadRequests);
    config.shards = 1;
    config.workers = 1;
    config.window = Duration::from_millis_f(1.5);
    const auto report = edgeai::ShardedFleetStudy::run(config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(kOverheadRequests));
}
BENCHMARK(BM_FleetOneShardWindowed)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
