// Figure 3: "Standard Deviation Latency".
// Regenerates the per-cell RTL standard deviation grid; the paper's
// extremes are the almost-deterministic B3 (1.8 ms) and the bursty E5
// (46.4 ms).

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "fig3"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("fig3", argc, argv);
}
