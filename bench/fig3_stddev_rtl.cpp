// Figure 3: "Standard Deviation Latency".
// Regenerates the per-cell RTL standard deviation grid; the paper's
// extremes are the almost-deterministic B3 (1.8 ms) and the bursty E5
// (46.4 ms).

#include <cstdio>

#include "bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace sixg;
  bench::banner("Figure 3", "per-cell RTL standard deviation (ms)");

  const core::KlagenfurtStudy study;
  const auto report = study.run_campaign();

  std::printf("\n%s\n", report.stddev_table().str().c_str());

  const auto min_sd = report.min_stddev();
  const auto max_sd = report.max_stddev();
  bench::anchor(("min cell stddev @ " + min_sd.label).c_str(), min_sd.value,
                "1.8 ms @ B3");
  bench::anchor(("max cell stddev @ " + max_sd.label).c_str(), max_sd.value,
                "46.4 ms @ E5");
  return 0;
}
