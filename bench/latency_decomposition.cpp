// Ablation called out in DESIGN.md: where do the ~65 ms of the local
// service request go? Decomposes the end-to-end RTL into radio access,
// carrier core (backhaul + CGNAT), inter-AS detour propagation, per-hop
// processing and queueing — and shows how each Section V fix removes its
// share.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "latency-decomposition"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("latency-decomposition", argc, argv);
}
