// Ablation called out in DESIGN.md: where do the ~65 ms of the local
// service request go? Decomposes the end-to-end RTL into radio access,
// carrier core (backhaul + CGNAT), inter-AS detour propagation, per-hop
// processing and queueing — and shows how each Section V fix removes its
// share.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "measurement/ping.hpp"
#include "radio/link_model.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace sixg;
  bench::banner("DESIGN ablation", "decomposition of the measured RTL");

  const core::KlagenfurtStudy study;
  const auto& europe = study.europe();
  const auto& net = europe.net;
  const auto path = net.find_path(europe.mobile_ue, europe.university_probe);

  // Deterministic wired components (one way, doubled for RTT).
  Duration propagation;
  Duration extra;
  Duration processing;
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const auto& link = net.link(path.links[i]);
    propagation += link.propagation();
    extra += link.extra_latency;
    if (i + 1 < path.links.size())
      processing += net.node(path.nodes[i + 1]).processing_delay;
  }

  // Stochastic components.
  Rng rng{23};
  stats::Summary queueing_ms;
  for (int s = 0; s < 4000; ++s) {
    Duration q;
    for (const auto link : path.links) {
      q += net.sample_queueing(link, rng);
      q += net.sample_queueing(link, rng);
    }
    queueing_ms.add(q.ms());
  }
  const radio::RadioLinkModel nsa{study.access_profile()};
  const auto c2 = study.rem().at(*study.grid().parse_label("C2"));
  const double radio_ms = nsa.expected_rtt(c2).ms();

  TextTable t{{"Component", "RTT share (ms)", "Removed by"}};
  t.set_align(0, TextTable::Align::kLeft);
  t.set_align(2, TextTable::Align::kLeft);
  t.add_row({"5G radio access (C2 conditions)", TextTable::num(radio_ms, 1),
             "V-B access evolution / 6G"});
  t.add_row({"detour propagation (2x2659 km fibre)",
             TextTable::num(2.0 * propagation.ms(), 1), "V-A local peering"});
  t.add_row({"carrier extras (CGNAT, access tails)",
             TextTable::num(2.0 * extra.ms(), 1),
             "V-B UPF integration (local breakout)"});
  t.add_row({"per-hop forwarding (10 hops)",
             TextTable::num(2.0 * processing.ms(), 1),
             "V-A fewer hops"});
  t.add_row({"public-Internet queueing (mean)",
             TextTable::num(queueing_ms.mean(), 1), "V-A shorter path"});
  const double total = radio_ms + 2.0 * propagation.ms() + 2.0 * extra.ms() +
                       2.0 * processing.ms() + queueing_ms.mean();
  t.add_row({"TOTAL (expected)", TextTable::num(total, 1), "-"});
  std::printf("\n%s\n", t.str().c_str());

  // Cross-check against the sampled end-to-end mean.
  const meas::PingMeasurement ping{net, europe.mobile_ue,
                                   europe.university_probe, nsa, c2};
  Rng rng2{29};
  const auto sampled = ping.run(3000, rng2);
  bench::anchor("decomposition total (ms)", total, "matches sampled mean");
  bench::anchor("sampled end-to-end mean (ms)", sampled.summary_ms.mean(),
                "Fig. 2 C2-class cell");
  bench::anchor("radio share of total (%)", radio_ms / total * 100.0,
                "access dominates after peering");
  return 0;
}
