// Table I: "Networking hops for local service request".
// Regenerates the 10-hop traceroute from the mobile node (cell C2) to the
// RIPE-Atlas-like probe at the university (cell E3) — two endpoints less
// than 5 km apart whose traffic crosses half the continent.

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "table1"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("table1", argc, argv);
}
