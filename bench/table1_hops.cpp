// Table I: "Networking hops for local service request".
// Regenerates the 10-hop traceroute from the mobile node (cell C2) to the
// RIPE-Atlas-like probe at the university (cell E3) — two endpoints less
// than 5 km apart whose traffic crosses half the continent.

#include <cstdio>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "measurement/ping.hpp"
#include "radio/link_model.hpp"
#include "topo/traceroute.hpp"

int main() {
  using namespace sixg;
  bench::banner("Table I", "networking hops for a local service request");

  const core::KlagenfurtStudy study;
  const auto& europe = study.europe();
  Rng rng{7};

  const auto trace = topo::traceroute(europe.net, europe.mobile_ue,
                                      europe.university_probe, rng);
  std::printf("\n%s\n", trace.table().str().c_str());

  // End-to-end RTL of the same request including the 5G access in C2.
  const auto c2 = study.grid().parse_label("C2");
  const radio::RadioLinkModel nsa{study.access_profile()};
  const meas::PingMeasurement ping{europe.net, europe.mobile_ue,
                                   europe.university_probe, nsa,
                                   study.rem().at(*c2)};
  Rng ping_rng{11};
  const auto result = ping.run(500, ping_rng);

  const double straight = geo::distance_km(
      europe.net.node(europe.mobile_ue).position,
      europe.net.node(europe.university_probe).position);

  bench::anchor("network hops", double(trace.hop_count()), "10");
  bench::anchor("network-layer RTL (ms)", trace.rtt_ms, "part of 65 ms");
  bench::anchor("end-to-end RTL incl. 5G access, best (ms)",
                result.summary_ms.min(), "65 ms (single trace)");
  bench::anchor("end-to-end RTL incl. 5G access, mean (ms)",
                result.summary_ms.mean(), ">62 ms (Sec. V-B)");
  bench::anchor("UE->probe straight-line distance (km)", straight, "<5 km");
  return 0;
}
