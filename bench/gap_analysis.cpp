// Section IV-C headline findings, computed instead of quoted: the ~270 %
// excess over the AR frame budget, the ~7x mobile/wired ratio, and the
// ~35 ms application-layer addition reported by Tutti [21].

#include "bench_util.hpp"

// The logic lives in src/core/scenarios.cpp as the registered
// scenario "gap-analysis"; this binary is its standalone shim.
int main(int argc, char** argv) {
  return sixg::bench::run_scenario_main("gap-analysis", argc, argv);
}
