// Section IV-C headline findings, computed instead of quoted: the ~270 %
// excess over the AR frame budget, the ~7x mobile/wired ratio, and the
// ~35 ms application-layer addition reported by Tutti [21].

#include <cstdio>

#include "apps/protocols.hpp"
#include "bench_util.hpp"
#include "core/gap.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace sixg;
  bench::banner("Section IV-C", "gap analysis of the measured 5G deployment");

  const core::KlagenfurtStudy study;
  const auto report = study.run_campaign();
  const auto wired = study.wired_baseline();

  const core::GapAnalysis gap{
      report, wired,
      core::RequirementsRegistry::paper_registry().binding_requirement()};
  std::printf("\n%s\n", gap.summary_table().str().c_str());

  const auto& f = gap.findings();
  bench::anchor("requirement excess (%)", f.requirement_excess_percent,
                "~270 %");
  bench::anchor("mobile/wired ratio", f.mobile_over_wired, "~7x");

  // Application layer on top of network RTL (Tutti [21]: +35 ms average;
  // our protocol models: broker/stack overhead both ways + processing).
  Rng rng{5};
  stats::Summary app_added;
  for (int i = 0; i < 4000; ++i) {
    const Duration overhead =
        apps::ProtocolOverheadModel::sample_overhead(apps::IotProtocol::kMqtt,
                                                     rng) +
        apps::ProtocolOverheadModel::sample_overhead(apps::IotProtocol::kMqtt,
                                                     rng) +
        Duration::from_millis_f(18.0);  // service-side inference/render
    app_added.add(overhead.ms());
  }
  bench::anchor("application-layer addition (ms)", app_added.mean(),
                "+35 ms on average [21][22]");
  return 0;
}
